// Package data provides the synthetic datasets this reproduction trains
// on in place of CIFAR-10, ImageNet and the Penn Treebank (which cannot
// be shipped offline).
//
// Design goals: (1) deterministic — sample i of dataset seed s is the
// same bytes on every machine and every run, so distributed replicas and
// repeated experiments are exactly reproducible; (2) learnable but not
// trivial — classes are anisotropic Gaussian blobs around structured
// means (images) and a random Markov chain (text), so loss curves show
// the same qualitative dynamics (fast early progress, long tail, clear
// separation between broken and working optimizers) the paper's figures
// rely on; (3) infinite — samples are generated on demand by index, so
// "epochs" scale freely and no worker ever stores a dataset.
package data

import (
	"fmt"

	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/tensor"
)

// Images is a synthetic image-classification dataset: each class is a
// Gaussian blob around a structured mean image.
type Images struct {
	Classes int
	C, H, W int
	// Noise is the within-class standard deviation; higher values make
	// the task harder (class means are ~unit scale).
	Noise float32

	seed  uint64
	means [][]float32
}

// NewImages builds a dataset. The class means are derived from seed with
// a low-frequency spatial pattern per class so convolutional models have
// structure to exploit.
func NewImages(seed uint64, classes, c, h, w int, noise float32) (*Images, error) {
	if classes < 2 || c < 1 || h < 1 || w < 1 {
		return nil, fmt.Errorf("data: invalid image dataset geometry (%d classes, %dx%dx%d)", classes, c, h, w)
	}
	if noise <= 0 {
		return nil, fmt.Errorf("data: noise %v must be positive", noise)
	}
	d := &Images{Classes: classes, C: c, H: h, W: w, Noise: noise, seed: seed}
	d.means = make([][]float32, classes)
	root := prng.New(seed)
	for cls := range d.means {
		src := root.Split(uint64(cls))
		mean := make([]float32, c*h*w)
		// Low-frequency pattern: a few random "bumps" per channel plus a
		// channel-wide offset — recognisable by both conv and dense nets.
		for ch := 0; ch < c; ch++ {
			offset := float32(src.NormFloat64()) * 0.5
			type bump struct {
				cy, cx float64
				amp    float64
			}
			bumps := make([]bump, 3)
			for b := range bumps {
				bumps[b] = bump{
					cy:  src.Float64() * float64(h),
					cx:  src.Float64() * float64(w),
					amp: src.NormFloat64(),
				}
			}
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := float64(offset)
					for _, b := range bumps {
						dy := (float64(y) - b.cy) / float64(h)
						dx := (float64(x) - b.cx) / float64(w)
						v += b.amp * gauss(dy*dy+dx*dx)
					}
					mean[ch*h*w+y*w+x] = float32(v)
				}
			}
		}
		d.means[cls] = mean
	}
	return d, nil
}

// gauss is exp(-8r²) without importing math for a micro hot path.
func gauss(r2 float64) float64 {
	// 5th-order Taylor-like approximation is unnecessary; use the cheap
	// rational approximation 1/(1+8r²)² which is close enough for
	// synthetic structure.
	d := 1 + 8*r2
	return 1 / (d * d)
}

// Dim returns the flattened sample dimension C·H·W.
func (d *Images) Dim() int { return d.C * d.H * d.W }

// Sample deterministically generates sample idx: its label is idx mod
// Classes, its pixels the class mean plus Gaussian noise keyed by idx.
func (d *Images) Sample(idx uint64) ([]float32, int) {
	label := int(idx % uint64(d.Classes))
	src := prng.New(d.seed ^ (idx+1)*0x9e3779b97f4a7c15)
	x := make([]float32, d.Dim())
	mean := d.means[label]
	for i := range x {
		x[i] = mean[i] + d.Noise*float32(src.NormFloat64())
	}
	return x, label
}

// Batch assembles the mini-batch for (iter, rank) under data parallelism:
// worker rank of workers takes batch consecutive samples from the global
// sample stream, so no two workers ever see the same sample in the same
// iteration (the paper's D_i^g partitioning).
func (d *Images) Batch(iter, rank, workers, batch int) (*tensor.Matrix, []int) {
	x := tensor.NewMatrix(batch, d.Dim())
	labels := make([]int, batch)
	base := uint64(iter)*uint64(workers)*uint64(batch) + uint64(rank)*uint64(batch)
	for i := 0; i < batch; i++ {
		sample, label := d.Sample(base + uint64(i))
		copy(x.Row(i), sample)
		labels[i] = label
	}
	return x, labels
}

// EvalBatch returns a held-out batch disjoint from every training batch
// (indices offset into a far region of the sample stream).
func (d *Images) EvalBatch(iter, batch int) (*tensor.Matrix, []int) {
	const evalOffset = 1 << 40
	x := tensor.NewMatrix(batch, d.Dim())
	labels := make([]int, batch)
	base := uint64(evalOffset) + uint64(iter)*uint64(batch)
	for i := 0; i < batch; i++ {
		sample, label := d.Sample(base + uint64(i))
		copy(x.Row(i), sample)
		labels[i] = label
	}
	return x, labels
}

// Text is a synthetic language-modelling corpus: a first-order Markov
// chain over a vocabulary, standing in for the Penn Treebank. The
// transition matrix is sparse-ish (each token prefers a handful of
// successors), giving the model real structure to learn — perplexity
// drops well below vocab size for a trained model.
type Text struct {
	Vocab int

	seed uint64
	cum  []float32 // cumulative transition rows, Vocab×Vocab
}

// NewText builds the corpus generator.
func NewText(seed uint64, vocab int) (*Text, error) {
	if vocab < 2 {
		return nil, fmt.Errorf("data: vocab %d too small", vocab)
	}
	t := &Text{Vocab: vocab, seed: seed, cum: make([]float32, vocab*vocab)}
	src := prng.New(seed)
	for from := 0; from < vocab; from++ {
		row := t.cum[from*vocab : (from+1)*vocab]
		// Sharply peaked transition distribution: 4 preferred successors.
		var total float32
		for to := range row {
			row[to] = 0.05 + 0.1*src.Float32()
		}
		for b := 0; b < 4; b++ {
			row[src.Intn(vocab)] += 3 + 5*src.Float32()
		}
		for to := range row {
			total += row[to]
		}
		acc := float32(0)
		for to := range row {
			acc += row[to] / total
			row[to] = acc
		}
		row[vocab-1] = 1 // guard against rounding
	}
	return t, nil
}

// Sequence deterministically generates sequence idx of length n+1 and
// returns (inputs, targets): targets are inputs shifted by one.
func (t *Text) Sequence(idx uint64, n int) (inputs, targets []int) {
	src := prng.New(t.seed ^ (idx+1)*0xd1342543de82ef95)
	tokens := make([]int, n+1)
	tokens[0] = src.Intn(t.Vocab)
	for i := 1; i <= n; i++ {
		row := t.cum[tokens[i-1]*t.Vocab : (tokens[i-1]+1)*t.Vocab]
		u := src.Float32()
		// Linear scan; vocab is small in the simulated corpus.
		next := 0
		for next < t.Vocab-1 && row[next] < u {
			next++
		}
		tokens[i] = next
	}
	return tokens[:n], tokens[1:]
}

// Batch assembles the (inputs, targets) mini-batch for (iter, rank) with
// the same disjoint partitioning as Images.Batch.
func (t *Text) Batch(iter, rank, workers, batch, seqLen int) (inputs, targets [][]int) {
	inputs = make([][]int, batch)
	targets = make([][]int, batch)
	base := uint64(iter)*uint64(workers)*uint64(batch) + uint64(rank)*uint64(batch)
	for i := 0; i < batch; i++ {
		inputs[i], targets[i] = t.Sequence(base+uint64(i), seqLen)
	}
	return inputs, targets
}
