package data

import (
	"testing"
)

func TestImagesDeterministic(t *testing.T) {
	a, err := NewImages(7, 10, 3, 8, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewImages(7, 10, 3, 8, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []uint64{0, 1, 999, 1 << 40} {
		xa, la := a.Sample(idx)
		xb, lb := b.Sample(idx)
		if la != lb {
			t.Fatalf("idx %d: labels differ", idx)
		}
		for i := range xa {
			if xa[i] != xb[i] {
				t.Fatalf("idx %d: pixel %d differs", idx, i)
			}
		}
	}
}

func TestImagesLabelsCycle(t *testing.T) {
	d, err := NewImages(1, 10, 1, 4, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for idx := uint64(0); idx < 30; idx++ {
		_, label := d.Sample(idx)
		if label != int(idx%10) {
			t.Fatalf("idx %d: label %d", idx, label)
		}
	}
}

func TestImagesClassSeparation(t *testing.T) {
	// Samples of the same class must be closer to their class mean than to
	// other class means on average (i.e. the task is learnable).
	d, err := NewImages(3, 4, 3, 8, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	const n = 100
	for idx := uint64(0); idx < n; idx++ {
		x, label := d.Sample(idx)
		best, bestDist := -1, 0.0
		for cls := 0; cls < d.Classes; cls++ {
			var dist float64
			for i, v := range x {
				dv := float64(v - d.means[cls][i])
				dist += dv * dv
			}
			if best == -1 || dist < bestDist {
				best, bestDist = cls, dist
			}
		}
		if best == label {
			correct++
		}
	}
	if correct < n*8/10 {
		t.Fatalf("nearest-mean classification only %d/%d; dataset unlearnable", correct, n)
	}
}

func TestImagesBatchPartitioning(t *testing.T) {
	d, err := NewImages(5, 10, 1, 4, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Workers 0 and 1 at the same iteration see disjoint samples; the
	// same worker at the same iteration sees identical ones.
	x0, l0 := d.Batch(3, 0, 2, 4)
	x0b, _ := d.Batch(3, 0, 2, 4)
	x1, _ := d.Batch(3, 1, 2, 4)
	for i := range x0.Data {
		if x0.Data[i] != x0b.Data[i] {
			t.Fatal("same (iter,rank) batch not deterministic")
		}
	}
	same := true
	for i := range x0.Data {
		if x0.Data[i] != x1.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("workers 0 and 1 saw identical batches")
	}
	if len(l0) != 4 {
		t.Fatalf("labels length %d", len(l0))
	}
}

func TestImagesEvalDisjointFromTrain(t *testing.T) {
	d, err := NewImages(5, 10, 1, 4, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	trainX, _ := d.Batch(0, 0, 1, 4)
	evalX, _ := d.EvalBatch(0, 4)
	same := true
	for i := range trainX.Data {
		if trainX.Data[i] != evalX.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("eval batch equals train batch")
	}
}

func TestImagesValidation(t *testing.T) {
	if _, err := NewImages(1, 1, 3, 8, 8, 0.5); err == nil {
		t.Error("1 class accepted")
	}
	if _, err := NewImages(1, 10, 3, 8, 8, 0); err == nil {
		t.Error("zero noise accepted")
	}
	if _, err := NewImages(1, 10, 0, 8, 8, 0.5); err == nil {
		t.Error("zero channels accepted")
	}
}

func TestTextDeterministicAndShifted(t *testing.T) {
	c, err := NewText(11, 50)
	if err != nil {
		t.Fatal(err)
	}
	in1, tg1 := c.Sequence(5, 20)
	in2, tg2 := c.Sequence(5, 20)
	if len(in1) != 20 || len(tg1) != 20 {
		t.Fatalf("lengths %d/%d", len(in1), len(tg1))
	}
	for i := range in1 {
		if in1[i] != in2[i] || tg1[i] != tg2[i] {
			t.Fatal("sequence not deterministic")
		}
	}
	// targets are inputs shifted by one.
	for i := 0; i+1 < len(in1); i++ {
		if tg1[i] != in1[i+1] {
			t.Fatalf("target %d = %d, want next input %d", i, tg1[i], in1[i+1])
		}
	}
}

func TestTextTokensInRange(t *testing.T) {
	c, err := NewText(3, 17)
	if err != nil {
		t.Fatal(err)
	}
	for idx := uint64(0); idx < 50; idx++ {
		in, tg := c.Sequence(idx, 30)
		for i := range in {
			if in[i] < 0 || in[i] >= 17 || tg[i] < 0 || tg[i] >= 17 {
				t.Fatalf("token out of range at seq %d pos %d", idx, i)
			}
		}
	}
}

func TestTextMarkovStructure(t *testing.T) {
	// A first-order Markov chain with peaked transitions has much lower
	// conditional entropy than uniform: the most frequent successor of
	// any token should dominate.
	c, err := NewText(9, 20)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[[2]int]int)
	totals := make(map[int]int)
	for idx := uint64(0); idx < 200; idx++ {
		in, tg := c.Sequence(idx, 50)
		for i := range in {
			counts[[2]int{in[i], tg[i]}]++
			totals[in[i]]++
		}
	}
	dominated := 0
	for from := 0; from < 20; from++ {
		if totals[from] < 50 {
			continue
		}
		best := 0
		for to := 0; to < 20; to++ {
			if c := counts[[2]int{from, to}]; c > best {
				best = c
			}
		}
		if float64(best)/float64(totals[from]) > 0.2 {
			dominated++
		}
	}
	if dominated < 10 {
		t.Fatalf("only %d/20 tokens have a dominant successor; chain too uniform", dominated)
	}
}

func TestTextBatchShapes(t *testing.T) {
	c, err := NewText(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	in, tg := c.Batch(0, 1, 4, 8, 15)
	if len(in) != 8 || len(tg) != 8 {
		t.Fatalf("batch size %d/%d", len(in), len(tg))
	}
	for i := range in {
		if len(in[i]) != 15 || len(tg[i]) != 15 {
			t.Fatalf("sequence %d has lengths %d/%d", i, len(in[i]), len(tg[i]))
		}
	}
}

func TestTextValidation(t *testing.T) {
	if _, err := NewText(1, 1); err == nil {
		t.Error("vocab 1 accepted")
	}
}
