package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"gtopkssgd/internal/prng"
)

func sampleState(seed uint64, n int) *State {
	src := prng.New(seed)
	vec := func() []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(src.NormFloat64())
		}
		return v
	}
	return &State{
		Iter:     12345,
		Weights:  vec(),
		Velocity: vec(),
		Residual: vec(),
		Meta: map[string]string{
			"model": "resnet20sim",
			"algo":  "gtopk",
			"rho":   "0.001",
		},
	}
}

func statesEqual(a, b *State) bool {
	if a.Iter != b.Iter || len(a.Meta) != len(b.Meta) {
		return false
	}
	for k, v := range a.Meta {
		if b.Meta[k] != v {
			return false
		}
	}
	vecs := [][2][]float32{{a.Weights, b.Weights}, {a.Velocity, b.Velocity}, {a.Residual, b.Residual}}
	for _, pair := range vecs {
		if len(pair[0]) != len(pair[1]) {
			return false
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				return false
			}
		}
	}
	return true
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := sampleState(1, 100)
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(s, got) {
		t.Fatal("round trip altered the state")
	}
}

func TestEmptyVectorsAndMeta(t *testing.T) {
	s := &State{Iter: 0}
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 0 || len(got.Weights) != 0 || len(got.Meta) != 0 {
		t.Fatalf("empty state round trip: %+v", got)
	}
}

func TestDeterministicBytes(t *testing.T) {
	// Same state must serialise to identical bytes (metadata sorted).
	s := sampleState(2, 50)
	var b1, b2 bytes.Buffer
	if err := Save(&b1, s); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b2, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("serialisation not deterministic")
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := sampleState(3, 64)
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one byte in the middle: checksum must catch it.
	for _, pos := range []int{8, len(raw) / 2, len(raw) - 5} {
		corrupted := append([]byte(nil), raw...)
		corrupted[pos] ^= 0x40
		if _, err := Load(bytes.NewReader(corrupted)); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	s := sampleState(4, 32)
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 3, 10, len(raw) - 1} {
		if _, err := Load(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("XXXX0000"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid magic, absurd version.
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.Write([]byte{99, 0, 0, 0})
	if _, err := Load(&buf); err == nil {
		t.Error("bad version accepted")
	}
}

func TestSaveLoadFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	s := sampleState(5, 20)
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(s, got) {
		t.Fatal("file round trip altered the state")
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	// Overwrite with new state is atomic & loadable.
	s2 := sampleState(6, 20)
	if err := SaveFile(path, s2); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(s2, got2) {
		t.Fatal("overwrite round trip altered the state")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Property: save/load is the identity for arbitrary small states.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8, iter uint64) bool {
		s := sampleState(seed, int(nRaw%64))
		s.Iter = iter
		var buf bytes.Buffer
		if err := Save(&buf, s); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		return statesEqual(s, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
