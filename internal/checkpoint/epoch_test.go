package checkpoint

import (
	"bytes"
	"testing"
)

func TestClusterMetaRoundTrip(t *testing.T) {
	s := &State{Iter: 12, Weights: []float32{1, 2}, Velocity: []float32{3, 4}}
	s.SetClusterMeta(7, 3, 1, "w2")

	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := got.Epoch(); !ok || e != 7 {
		t.Fatalf("epoch = %d, %v; want 7, true", e, ok)
	}
	if w, ok := got.World(); !ok || w != 3 {
		t.Fatalf("world = %d, %v; want 3, true", w, ok)
	}
	if r, ok := got.Rank(); !ok || r != 1 {
		t.Fatalf("rank = %d, %v; want 1, true", r, ok)
	}
	if got.Name() != "w2" {
		t.Fatalf("name = %q, want w2", got.Name())
	}
	if err := got.ValidateName("w2"); err != nil {
		t.Fatalf("own name rejected: %v", err)
	}
	if err := got.ValidateName("w0"); err == nil {
		t.Fatal("foreign snapshot accepted")
	}
}

func TestClusterMetaAbsent(t *testing.T) {
	s := &State{}
	if _, ok := s.Epoch(); ok {
		t.Fatal("epoch reported on anonymous snapshot")
	}
	if _, ok := s.World(); ok {
		t.Fatal("world reported on anonymous snapshot")
	}
	if _, ok := s.Rank(); ok {
		t.Fatal("rank reported on anonymous snapshot")
	}
	// Anonymous (pre-elastic) checkpoints restore under any name.
	if err := s.ValidateName("w5"); err != nil {
		t.Fatal(err)
	}
}

func TestMembersRoundTrip(t *testing.T) {
	s := &State{Iter: 4, Weights: []float32{1}, Velocity: []float32{2}}
	if err := s.SetMembers([]string{"w0", "w15", "w2"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	members, ok := got.Members()
	if !ok || len(members) != 3 || members[0] != "w0" || members[1] != "w15" || members[2] != "w2" {
		t.Fatalf("members = %v, %v; want [w0 w15 w2], true", members, ok)
	}
}

func TestMembersRejectSeparator(t *testing.T) {
	s := &State{}
	if err := s.SetMembers([]string{"w0", "evil,name"}); err == nil {
		t.Fatal("comma-bearing member name accepted")
	}
	if _, ok := s.Members(); ok {
		t.Fatal("members reported after rejected set")
	}
}

func TestMembersAbsent(t *testing.T) {
	s := &State{}
	if _, ok := s.Members(); ok {
		t.Fatal("members reported on snapshot without them")
	}
}
