package checkpoint

import (
	"bytes"
	"testing"
)

func TestClusterMetaRoundTrip(t *testing.T) {
	s := &State{Iter: 12, Weights: []float32{1, 2}, Velocity: []float32{3, 4}}
	s.SetClusterMeta(7, 3, 1, "w2")

	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := got.Epoch(); !ok || e != 7 {
		t.Fatalf("epoch = %d, %v; want 7, true", e, ok)
	}
	if w, ok := got.World(); !ok || w != 3 {
		t.Fatalf("world = %d, %v; want 3, true", w, ok)
	}
	if r, ok := got.Rank(); !ok || r != 1 {
		t.Fatalf("rank = %d, %v; want 1, true", r, ok)
	}
	if got.Name() != "w2" {
		t.Fatalf("name = %q, want w2", got.Name())
	}
	if err := got.ValidateName("w2"); err != nil {
		t.Fatalf("own name rejected: %v", err)
	}
	if err := got.ValidateName("w0"); err == nil {
		t.Fatal("foreign snapshot accepted")
	}
}

func TestClusterMetaAbsent(t *testing.T) {
	s := &State{}
	if _, ok := s.Epoch(); ok {
		t.Fatal("epoch reported on anonymous snapshot")
	}
	if _, ok := s.World(); ok {
		t.Fatal("world reported on anonymous snapshot")
	}
	if _, ok := s.Rank(); ok {
		t.Fatal("rank reported on anonymous snapshot")
	}
	// Anonymous (pre-elastic) checkpoints restore under any name.
	if err := s.ValidateName("w5"); err != nil {
		t.Fatal(err)
	}
}
