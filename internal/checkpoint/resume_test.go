package checkpoint_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"gtopkssgd/internal/checkpoint"
	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/transport"
)

// TestResumeBitExact is the integration contract of checkpointing:
// training N steps equals training N/2 steps, snapshotting (weights,
// velocity, per-rank residuals, iteration), restoring into fresh
// trainers, and training the remaining steps — bit for bit.
func TestResumeBitExact(t *testing.T) {
	const (
		p     = 4
		dim   = 40
		total = 60
		half  = 30
		k     = 4
	)
	src := prng.New(5)
	target := make([]float32, dim)
	for i := range target {
		target[i] = float32(src.NormFloat64())
	}
	gradFn := func(rank int) core.GradFn {
		noise := prng.New(uint64(rank) + 100)
		offsets := make([]float32, dim)
		for i := range offsets {
			offsets[i] = float32(noise.NormFloat64()) * 0.01
		}
		return func(_ int, weights, grad []float32) float64 {
			var loss float64
			for i := range weights {
				d := weights[i] - target[i] + offsets[i]
				grad[i] = d
				loss += float64(d) * float64(d)
			}
			return loss
		}
	}
	cfg := core.TrainConfig{LR: 0.1, Momentum: 0.9}

	// Uninterrupted reference run.
	reference := trainSegment(t, p, dim, k, cfg, gradFn, total, nil)

	// Interrupted run: first half...
	mid := trainSegment(t, p, dim, k, cfg, gradFn, half, nil)

	// ...snapshot every rank through the checkpoint codec...
	states := make([]*checkpoint.State, p)
	for r := 0; r < p; r++ {
		s := &checkpoint.State{
			Iter:     uint64(half),
			Weights:  mid.weights[r],
			Velocity: mid.velocity[r],
			Residual: mid.residual[r],
			Meta:     map[string]string{"algo": "gtopk"},
		}
		// Round-trip through the binary format so the test covers the
		// codec, not just in-memory copying.
		roundTripped := roundTrip(t, s)
		states[r] = roundTripped
	}

	// ...and resume for the second half.
	resumed := trainSegment(t, p, dim, k, cfg, gradFn, total-half, states)

	for r := 0; r < p; r++ {
		for i := range reference.weights[r] {
			if resumed.weights[r][i] != reference.weights[r][i] {
				t.Fatalf("rank %d weight %d: resumed %v, reference %v",
					r, i, resumed.weights[r][i], reference.weights[r][i])
			}
		}
	}
}

type segmentResult struct {
	weights  [][]float32
	velocity [][]float32
	residual [][]float32
}

func trainSegment(t *testing.T, p, dim, k int, cfg core.TrainConfig,
	gradFn func(rank int) core.GradFn, steps int, restore []*checkpoint.State) *segmentResult {
	t.Helper()
	f, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	out := &segmentResult{
		weights:  make([][]float32, p),
		velocity: make([][]float32, p),
		residual: make([][]float32, p),
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := collective.New(f.Conn(rank))
			agg, err := core.NewGTopKAggregator(comm, dim, k)
			if err != nil {
				errs[rank] = err
				return
			}
			weights := make([]float32, dim)
			tr, err := core.NewTrainer(cfg, agg, weights, gradFn(rank))
			if err != nil {
				errs[rank] = err
				return
			}
			if restore != nil {
				copy(weights, restore[rank].Weights)
				if err := tr.Restore(int(restore[rank].Iter), restore[rank].Velocity); err != nil {
					errs[rank] = err
					return
				}
				if err := agg.Sparsifier().RestoreResidual(restore[rank].Residual); err != nil {
					errs[rank] = err
					return
				}
			}
			for s := 0; s < steps; s++ {
				if _, err := tr.Step(context.Background()); err != nil {
					errs[rank] = err
					return
				}
			}
			out.weights[rank] = append([]float32(nil), tr.Weights()...)
			out.velocity[rank] = append([]float32(nil), tr.Velocity()...)
			out.residual[rank] = append([]float32(nil), agg.Sparsifier().Residual()...)
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return out
}

func roundTrip(t *testing.T, s *checkpoint.State) *checkpoint.State {
	t.Helper()
	var buf bytes.Buffer
	if err := checkpoint.Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}
