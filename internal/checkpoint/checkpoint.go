// Package checkpoint persists and restores distributed-training state:
// model weights, optimizer velocity, the sparsifier's error-feedback
// residual, and the iteration counter. Long low-bandwidth training runs
// (the paper's ImageNet experiments run for days) need restartability,
// and the residual is genuinely part of the optimizer state — dropping
// it on restart loses every gradient queued locally.
//
// Format (little-endian): magic "GTKC" | uint32 version | uint64 iter |
// 3 × (uint32 length | raw float32s) for weights/velocity/residual |
// uint32 metadata count | count × (uint32 len | bytes key | uint32 len |
// bytes value) | crc32 (IEEE) of everything before it.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
)

const (
	magic   = "GTKC"
	version = 1
)

// State is a snapshot of one worker's training state. Because all
// replicas are bit-identical under synchronous training, one snapshot
// restores the whole cluster; per-rank residuals differ, so sparsified
// runs save one state per rank.
type State struct {
	Iter     uint64
	Weights  []float32
	Velocity []float32
	Residual []float32
	Meta     map[string]string
}

// Save writes the state to w in the versioned binary format.
func Save(w io.Writer, s *State) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)

	if _, err := mw.Write([]byte(magic)); err != nil {
		return fmt.Errorf("checkpoint: write magic: %w", err)
	}
	if err := writeU32(mw, version); err != nil {
		return err
	}
	if err := writeU64(mw, s.Iter); err != nil {
		return err
	}
	for _, vec := range [][]float32{s.Weights, s.Velocity, s.Residual} {
		if err := writeVec(mw, vec); err != nil {
			return err
		}
	}
	if err := writeMeta(mw, s.Meta); err != nil {
		return err
	}
	// Trailing checksum (not itself checksummed).
	if err := writeU32(w, crc.Sum32()); err != nil {
		return err
	}
	return nil
}

// Load parses a checkpoint, validating the magic, version and checksum.
func Load(r io.Reader) (*State, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	hdr := make([]byte, 4)
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return nil, fmt.Errorf("checkpoint: read magic: %w", err)
	}
	if string(hdr) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", hdr)
	}
	ver, err := readU32(tr)
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", ver)
	}
	s := &State{}
	if s.Iter, err = readU64(tr); err != nil {
		return nil, err
	}
	if s.Weights, err = readVec(tr); err != nil {
		return nil, err
	}
	if s.Velocity, err = readVec(tr); err != nil {
		return nil, err
	}
	if s.Residual, err = readVec(tr); err != nil {
		return nil, err
	}
	if s.Meta, err = readMeta(tr); err != nil {
		return nil, err
	}
	want := crc.Sum32()
	got, err := readU32(r) // checksum is outside the CRC'd region
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (file %08x, computed %08x)", got, want)
	}
	return s, nil
}

// SaveFile atomically writes the state to path (temp file + rename), so
// a crash mid-save never corrupts an existing checkpoint.
func SaveFile(path string, s *State) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := Save(bw, s); err != nil {
		f.Close()      //nolint:errcheck // error path
		os.Remove(tmp) //nolint:errcheck // error path
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()      //nolint:errcheck // error path
		os.Remove(tmp) //nolint:errcheck // error path
		return fmt.Errorf("checkpoint: flush: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck // error path
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck // error path
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// LoadFile reads a checkpoint from path.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close() //nolint:errcheck // read-only
	return Load(bufio.NewReader(f))
}

const maxVecLen = 1 << 30 // 1G elements: sanity bound against corrupt headers

func writeVec(w io.Writer, vec []float32) error {
	if err := writeU32(w, uint32(len(vec))); err != nil {
		return err
	}
	buf := make([]byte, 4*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("checkpoint: write vector: %w", err)
	}
	return nil
}

func readVec(r io.Reader) ([]float32, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxVecLen {
		return nil, fmt.Errorf("checkpoint: vector length %d exceeds sanity bound", n)
	}
	buf := make([]byte, 4*int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("checkpoint: read vector: %w", err)
	}
	vec := make([]float32, n)
	for i := range vec {
		vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return vec, nil
}

func writeMeta(w io.Writer, meta map[string]string) error {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic byte-for-byte checkpoints
	if err := writeU32(w, uint32(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		for _, s := range []string{k, meta[k]} {
			if err := writeU32(w, uint32(len(s))); err != nil {
				return err
			}
			if _, err := io.WriteString(w, s); err != nil {
				return fmt.Errorf("checkpoint: write meta: %w", err)
			}
		}
	}
	return nil
}

func readMeta(r io.Reader) (map[string]string, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	const maxMeta = 1 << 16
	if n > maxMeta {
		return nil, fmt.Errorf("checkpoint: %d metadata entries exceeds sanity bound", n)
	}
	meta := make(map[string]string, n)
	for i := uint32(0); i < n; i++ {
		k, err := readStr(r)
		if err != nil {
			return nil, err
		}
		v, err := readStr(r)
		if err != nil {
			return nil, err
		}
		meta[k] = v
	}
	return meta, nil
}

func readStr(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	const maxStr = 1 << 20
	if n > maxStr {
		return "", fmt.Errorf("checkpoint: string length %d exceeds sanity bound", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("checkpoint: read string: %w", err)
	}
	return string(buf), nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("checkpoint: write u32: %w", err)
	}
	return nil
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("checkpoint: read u32: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("checkpoint: write u64: %w", err)
	}
	return nil
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("checkpoint: read u64: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

var _ hash.Hash32 = crc32.NewIEEE() // compile-time interface check documentation
