package checkpoint

import (
	"fmt"
	"strconv"
	"strings"
)

// Well-known metadata keys written by the elastic cluster runtime. They
// live in the free-form Meta map (the binary format is unchanged —
// version 1 files with and without them interoperate), but typed
// accessors keep every writer and reader agreeing on key names and
// encoding.
const (
	// MetaEpoch is the cluster epoch the snapshot was taken in.
	MetaEpoch = "cluster.epoch"
	// MetaWorld is the world size (rank count) at snapshot time.
	MetaWorld = "cluster.world"
	// MetaRank is the saving worker's rank at snapshot time.
	MetaRank = "cluster.rank"
	// MetaName is the saving worker's stable cluster name. Ranks are
	// reassigned on every epoch; the name is the identity that persists,
	// which is why checkpoint files are keyed by it.
	MetaName = "cluster.name"
	// MetaMembers is the rank-ordered member list of the snapshot's
	// epoch, comma-joined. It records the deterministic re-shard the
	// snapshot was taken under, so a resume after an elastic grow or
	// shrink can tell that its data shard moved (and log it) instead of
	// silently assuming the assignment never changed.
	MetaMembers = "cluster.members"
)

// SetClusterMeta records the elastic-cluster coordinates of a snapshot:
// the epoch it was taken in, the world size, and the saving worker's
// rank and stable name.
func (s *State) SetClusterMeta(epoch uint64, world, rank int, name string) {
	if s.Meta == nil {
		s.Meta = make(map[string]string, 4)
	}
	s.Meta[MetaEpoch] = strconv.FormatUint(epoch, 10)
	s.Meta[MetaWorld] = strconv.Itoa(world)
	s.Meta[MetaRank] = strconv.Itoa(rank)
	s.Meta[MetaName] = name
}

// SetMembers records the snapshot epoch's rank-ordered member list.
// Commas are the join separator, so names containing one are rejected —
// the cluster package never allows such names into an epoch.
func (s *State) SetMembers(names []string) error {
	for _, n := range names {
		if strings.Contains(n, ",") {
			return fmt.Errorf("checkpoint: member name %q contains the list separator", n)
		}
	}
	if s.Meta == nil {
		s.Meta = make(map[string]string, 1)
	}
	s.Meta[MetaMembers] = strings.Join(names, ",")
	return nil
}

// Members returns the snapshot epoch's rank-ordered member list; ok is
// false for snapshots written before the grow-capable runtime (or
// outside an elastic job).
func (s *State) Members() (names []string, ok bool) {
	v, present := s.Meta[MetaMembers]
	if !present {
		return nil, false
	}
	return strings.Split(v, ","), true
}

// Epoch returns the cluster epoch recorded in the snapshot; ok is false
// for checkpoints written outside an elastic job.
func (s *State) Epoch() (epoch uint64, ok bool) {
	v, present := s.Meta[MetaEpoch]
	if !present {
		return 0, false
	}
	epoch, err := strconv.ParseUint(v, 10, 64)
	return epoch, err == nil
}

// World returns the world size recorded in the snapshot; ok is false
// when absent or malformed.
func (s *State) World() (world int, ok bool) {
	return s.intMeta(MetaWorld)
}

// Rank returns the saving worker's rank recorded in the snapshot; ok is
// false when absent or malformed.
func (s *State) Rank() (rank int, ok bool) {
	return s.intMeta(MetaRank)
}

// Name returns the saving worker's stable cluster name ("" when the
// snapshot was written outside an elastic job).
func (s *State) Name() string { return s.Meta[MetaName] }

// ValidateName rejects restoring another worker's snapshot: residuals
// are per-worker optimizer state, so worker w must only resume from a
// checkpoint written by w (or from an anonymous, pre-elastic one).
func (s *State) ValidateName(name string) error {
	if got := s.Name(); got != "" && got != name {
		return fmt.Errorf("checkpoint: snapshot belongs to worker %q, not %q", got, name)
	}
	return nil
}

func (s *State) intMeta(key string) (int, bool) {
	v, present := s.Meta[key]
	if !present {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	return n, err == nil
}
