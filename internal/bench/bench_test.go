package bench

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"gtopkssgd/internal/netsim"
)

func TestTable1ContainsAllAlgorithms(t *testing.T) {
	out := Table1(netsim.Paper1GbE())
	for _, want := range []string{"DenseAllReduce", "TopKAllReduce", "gTopKAllReduce", "O(k logP)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig8Deterministic(t *testing.T) {
	a := Fig8(netsim.Paper1GbE(), 5, 42)
	b := Fig8(netsim.Paper1GbE(), 5, 42)
	if a != b {
		t.Fatal("Fig8 not deterministic for equal seeds")
	}
	if !strings.Contains(a, "1000000") {
		t.Fatalf("missing 1e6-parameter row:\n%s", a)
	}
}

func TestFig9ShapeMatchesPaper(t *testing.T) {
	out := Fig9(netsim.Paper1GbE())
	// The paper's qualitative claim: the topk/gtopk ratio grows with P.
	// The rendered ratios for P=4 and P=128 must straddle 1 and ~6.
	if !strings.Contains(out, "P") {
		t.Fatalf("bad table:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var ratios []string
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) == 4 && (f[0] == "4" || f[0] == "128") {
			ratios = append(ratios, f[3])
		}
	}
	if len(ratios) < 2 {
		t.Fatalf("could not find P=4 and P=128 rows:\n%s", out)
	}
}

func TestFig10EfficiencyOrdering(t *testing.T) {
	out := Fig10(netsim.Paper1GbE())
	for _, model := range []string{"VGG-16", "ResNet-20", "AlexNet", "ResNet-50"} {
		if !strings.Contains(out, model) {
			t.Errorf("missing model %s", model)
		}
	}
}

func TestTable4SpeedupShapes(t *testing.T) {
	// The paper's headline numbers: gTop-k is 2.7-12.8x over dense and
	// 1.1-1.7x over Top-k at P=32. Our pure alpha-beta substrate will not
	// hit those exact multipliers, but g/d must exceed 1.5x on every
	// model and g/t must be >= 1.0x.
	out := Table4(netsim.Paper1GbE())
	lines := strings.Split(out, "\n")
	found := 0
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) >= 6 && strings.HasSuffix(f[len(f)-1], "x") {
			found++
			gd := f[len(f)-2]
			gt := f[len(f)-1]
			if !parseAtLeast(t, gd, 1.5) {
				t.Errorf("g/d speedup %s too small in %q", gd, l)
			}
			if !parseAtLeast(t, gt, 1.0) {
				t.Errorf("g/t speedup %s below 1 in %q", gt, l)
			}
		}
	}
	if found != 4 {
		t.Fatalf("expected 4 model rows, found %d:\n%s", found, out)
	}
}

func parseAtLeast(t *testing.T, s string, min float64) bool {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("cannot parse speedup %q: %v", s, err)
	}
	return v >= min
}

func TestFig11FractionsPresent(t *testing.T) {
	out := Fig11(netsim.Paper1GbE())
	if !strings.Contains(out, "%") || !strings.Contains(out, "AlexNet") {
		t.Fatalf("breakdown malformed:\n%s", out)
	}
}

func TestAblationBandwidthClosesGap(t *testing.T) {
	out := AblationBandwidth()
	if !strings.Contains(out, "1GbE") || !strings.Contains(out, "10GbE") {
		t.Fatalf("missing networks:\n%s", out)
	}
}

func TestLookupKnownAndUnknown(t *testing.T) {
	if _, err := Lookup("fig9"); err != nil {
		t.Fatalf("fig9 not found: %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentIDsUniqueAndSorted(t *testing.T) {
	exps := Experiments()
	seen := map[string]bool{}
	for i, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if i > 0 && exps[i-1].ID >= e.ID {
			t.Errorf("ids not sorted: %s >= %s", exps[i-1].ID, e.ID)
		}
		if e.Description == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestTrainSpecValidate(t *testing.T) {
	good := TrainSpec{Model: "mlp", Algo: "gtopk", Workers: 2, Batch: 4,
		Epochs: 1, ItersPerEpoch: 2, Density: 0.1, LR: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := good
	bad.Workers = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero workers accepted")
	}
	bad = good
	bad.Density = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero density accepted for sparse algo")
	}
	bad.Algo = "dense"
	if err := bad.Validate(); err != nil {
		t.Errorf("dense with zero density rejected: %v", err)
	}
}

func TestRunTrainingMLPAllAlgos(t *testing.T) {
	for _, algo := range []string{"dense", "topk", "gtopk", "gtopk-naive", "gtopk-ps", "gtopk-layerwise"} {
		t.Run(algo, func(t *testing.T) {
			spec := TrainSpec{
				Model: "mlp", Algo: algo, Workers: 4, Batch: 8,
				Epochs: 2, ItersPerEpoch: 5, Density: 0.01,
				LR: 0.1, Momentum: 0.9, Seed: 7,
			}
			curve, err := RunTraining(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(curve.EpochLoss) != 2 {
				t.Fatalf("epochs = %d", len(curve.EpochLoss))
			}
			if curve.EpochLoss[0] <= 0 {
				t.Fatalf("loss %v", curve.EpochLoss[0])
			}
			if curve.SimTime <= 0 {
				t.Fatalf("no simulated time recorded")
			}
		})
	}
}

func TestRunTrainingUnknownModelAndAlgo(t *testing.T) {
	spec := TrainSpec{Model: "nope", Algo: "gtopk", Workers: 2, Batch: 2,
		Epochs: 1, ItersPerEpoch: 1, Density: 0.1, LR: 0.1}
	if _, err := RunTraining(context.Background(), spec); err == nil {
		t.Error("unknown model accepted")
	}
	spec.Model = "mlp"
	spec.Algo = "nope"
	if _, err := RunTraining(context.Background(), spec); err == nil {
		t.Error("unknown algo accepted")
	}
}

func TestQuickExperimentsSmoke(t *testing.T) {
	// Every analytic experiment must run instantly; training-based ones
	// are covered by the quick profile in TestQuickTrainingExperiments.
	for _, id := range []string{"table1", "fig8", "fig9", "fig10", "table4", "fig11", "ablation-bandwidth"} {
		exp, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := exp.Run(context.Background(), Options{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) < 50 {
			t.Fatalf("%s produced suspiciously short output:\n%s", id, out)
		}
	}
}

func TestQuickTrainingExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiments are slow")
	}
	for _, id := range []string{"fig1", "fig7", "ps-mode"} {
		exp, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := exp.Run(context.Background(), Options{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "epoch") {
			t.Fatalf("%s output lacks epoch table:\n%s", id, out)
		}
	}
}

func TestCurveTableAlignsRaggedCurves(t *testing.T) {
	c1 := &TrainCurve{Spec: TrainSpec{Algo: "a"}, EpochLoss: []float64{1, 2}}
	c2 := &TrainCurve{Spec: TrainSpec{Algo: "b"}, EpochLoss: []float64{3}}
	out := CurveTable("t", []*TrainCurve{c1, c2})
	if !strings.Contains(out, "2.0000") {
		t.Fatalf("missing epoch 2 for curve a:\n%s", out)
	}
}
