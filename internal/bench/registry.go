package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/sparse"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks training-based experiments to smoke-test size
	// (seconds instead of minutes). Analytic experiments are unaffected.
	Quick bool
	// Seed drives all randomness; the default 42 reproduces the numbers
	// committed in EXPERIMENTS.md.
	Seed uint64
	// JSONPath overrides where the hotpath experiment writes its
	// machine-readable report (default BENCH_gtopk.json in the working
	// directory — run from the repo root to refresh the committed
	// artifact).
	JSONPath string
	// TCPNagle disables TCP_NODELAY on the harness's loopback fabrics,
	// re-enabling Nagle's algorithm (the gtopk-bench -tcp-nodelay=false
	// escape hatch for bandwidth-bound what-ifs).
	TCPNagle bool
	// Wire selects the sparse wire codec the hotpath harness's fabrics
	// negotiate (zero value = v1, the recorded-baseline configuration).
	// The wire-codec experiment sweeps all codecs regardless.
	Wire sparse.Codec
	// SelectShards, when > 0, overrides the wire-codec experiment's
	// sharded-selection sweep with {1, SelectShards}.
	SelectShards int
	// HierGroup, when > 1, overrides the hierarchy experiment's group
	// sweep with just {HierGroup}.
	HierGroup int
}

// wire returns the configured hotpath codec, defaulting to v1.
func (o Options) wire() sparse.Codec {
	if o.Wire == 0 {
		return sparse.CodecV1
	}
	return o.Wire
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// scale returns quick-profile or full-profile epochs/iterations.
func (o Options) scale(fullEpochs, fullIters int) (epochs, iters int) {
	if o.Quick {
		e := fullEpochs / 4
		if e < 2 {
			e = 2
		}
		i := fullIters / 4
		if i < 4 {
			i = 4
		}
		return e, i
	}
	return fullEpochs, fullIters
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID          string
	Description string
	Run         func(ctx context.Context, opt Options) (string, error)
}

// Experiments returns all registered experiments sorted by ID.
func Experiments() []Experiment {
	exps := []Experiment{
		{
			ID:          "table1",
			Description: "Table I: communication complexity and time-cost models",
			Run: func(_ context.Context, _ Options) (string, error) {
				return Table1(netsim.Paper1GbE()), nil
			},
		},
		{
			ID:          "fig8",
			Description: "Fig 8: point-to-point time vs message size (alpha-beta fit)",
			Run: func(_ context.Context, opt Options) (string, error) {
				return Fig8(netsim.Paper1GbE(), 5, opt.seed()), nil
			},
		},
		{
			ID:          "fig9",
			Description: "Fig 9: TopKAllReduce vs gTopKAllReduce time (workers / model size)",
			Run: func(_ context.Context, _ Options) (string, error) {
				return Fig9(netsim.Paper1GbE()), nil
			},
		},
		{
			ID:          "fig10",
			Description: "Fig 10: scaling efficiency of dense/Top-k/gTop-k S-SGD",
			Run: func(_ context.Context, _ Options) (string, error) {
				return Fig10(netsim.Paper1GbE()), nil
			},
		},
		{
			ID:          "table4",
			Description: "Table IV: training throughput on 32 workers with speedups",
			Run: func(_ context.Context, _ Options) (string, error) {
				return Table4(netsim.Paper1GbE()), nil
			},
		},
		{
			ID:          "fig11",
			Description: "Fig 11: compute/compression/communication breakdown",
			Run: func(_ context.Context, _ Options) (string, error) {
				return Fig11(netsim.Paper1GbE()), nil
			},
		},
		{ID: "fig1", Description: "Fig 1: 'select k from kP' convergence vs dense (ResNet-20)", Run: fig1},
		{ID: "fig5", Description: "Fig 5: VGG-16 and ResNet-20 convergence, dense vs gTop-k, P=4", Run: fig5},
		{ID: "fig6", Description: "Fig 6: AlexNet and ResNet-50 convergence, dense vs gTop-k, P=4", Run: fig6},
		{ID: "fig7", Description: "Fig 7: LSTM-PTB convergence, rho=0.005, P=4", Run: fig7},
		{ID: "fig12", Description: "Fig 12: convergence sensitivity to density rho", Run: fig12},
		{ID: "fig13", Description: "Fig 13/14: Top-k vs gTop-k accuracy vs mini-batch size", Run: fig13},
		{
			ID:          "ablation-tree",
			Description: "Ablation: tree gTop-k vs exact (AllGather) global top-k during training",
			Run:         ablationTree,
		},
		{
			ID:          "ablation-residual",
			Description: "Ablation: gTop-k with and without residual put-back",
			Run:         ablationResidual,
		},
		{
			ID:          "ablation-layerwise",
			Description: "Extension: layer-wise gTop-k sparsification (paper future work)",
			Run:         ablationLayerwise,
		},
		{
			ID:          "ps-mode",
			Description: "Extension: parameter-server gTop-k vs tree (cost + convergence)",
			Run:         psMode,
		},
		{
			ID:          "ablation-bandwidth",
			Description: "Ablation: gTop-k advantage on 1GbE vs 10GbE",
			Run: func(_ context.Context, _ Options) (string, error) {
				return AblationBandwidth(), nil
			},
		},
		{
			ID:          "ablation-quant",
			Description: "Baseline family: gTop-k vs signSGD/TernGrad/quantized-gTop-k (paper Sec. VI)",
			Run:         ablationQuant,
		},
		{
			ID:          "ablation-pipeline",
			Description: "Extension: comm/compute pipelining headroom (paper future work)",
			Run: func(_ context.Context, _ Options) (string, error) {
				return AblationPipeline(netsim.Paper1GbE()), nil
			},
		},
		{
			ID:          "bucketed-overlap",
			Description: "Extension: bucketed gTop-k pipeline, overlapped vs serialized (analytic + measured)",
			Run: func(ctx context.Context, opt Options) (string, error) {
				measured, err := MeasuredOverlap(ctx, opt)
				if err != nil {
					return "", err
				}
				return BucketedOverlap(netsim.Paper1GbE()) + "\n" + measured, nil
			},
		},
		{
			ID:          "bucketed-convergence",
			Description: "Extension: bucketed overlapped gTop-k convergence vs single-bucket gTop-k",
			Run:         bucketedConvergence,
		},
		{
			ID:          "hotpath",
			Description: "Hot path: zero-alloc gTop-k aggregation benchmarks; writes BENCH_gtopk.json",
			Run:         WriteHotPathJSON,
		},
		{
			ID:          "wire-codec",
			Description: "Hot path: v1/v2/v2-fp16 wire-byte reduction + sharded selection scaling; updates BENCH_gtopk.json",
			Run:         WriteWireCodecJSON,
		},
		{
			ID:          "compound",
			Description: "Hot path: compound v3 stacks (gTop-k x quantized values) + adaptive density; updates BENCH_gtopk.json",
			Run:         WriteCompoundJSON,
		},
		{
			ID:          "hierarchy",
			Description: "Extension: two-level hierarchical gTop-k vs flat tree crossover sweep; updates BENCH_gtopk.json",
			Run:         WriteHierarchyJSON,
		},
		{
			ID:          "quorum",
			Description: "Extension: straggler-tolerant quorum gTop-k under a WAN straggler; updates BENCH_gtopk.json",
			Run:         WriteQuorumJSON,
		},
		{
			ID:          "quorum_hier",
			Description: "Extension: hierarchical quorum with per-level deadline budgets at P=64; updates BENCH_gtopk.json",
			Run:         WriteQuorumHierJSON,
		},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (try: %s)", id, strings.Join(ids(), ", "))
}

// ids returns every experiment ID in sorted order — the listing the
// unknown -exp error prints must not depend on registration order.
func ids() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

func fig1(ctx context.Context, opt Options) (string, error) {
	epochs, iters := opt.scale(16, 20)
	base := TrainSpec{
		Model: "resnet20sim", Workers: 4, Batch: 16,
		Epochs: epochs, ItersPerEpoch: iters,
		Density: 0.001, LR: 0.02, Momentum: 0.9, GradClip: 1, Seed: opt.seed(),
	}
	curves, err := runAlgos(ctx, base, "dense", "gtopk-naive")
	if err != nil {
		return "", err
	}
	return CurveTable("Fig 1: ResNet-20, P=4, select k from kxP (naive gTop-k) vs dense", curves), nil
}

func fig5(ctx context.Context, opt Options) (string, error) {
	epochs, iters := opt.scale(16, 20)
	var out []string
	for _, model := range []string{"vgg16sim", "resnet20sim"} {
		base := TrainSpec{
			Model: model, Workers: 4, Batch: 16,
			Epochs: epochs, ItersPerEpoch: iters,
			Density: 0.001, WarmupDensities: PaperWarmup(),
			LR: modelLR(model), Momentum: 0.9, GradClip: 1, Seed: opt.seed(),
		}
		curves, err := runAlgos(ctx, base, "dense", "gtopk")
		if err != nil {
			return "", err
		}
		out = append(out, CurveTable(
			fmt.Sprintf("Fig 5: %s, P=4, dense vs gTop-k (warmup + rho=0.001)", model), curves))
	}
	return strings.Join(out, "\n"), nil
}

func fig6(ctx context.Context, opt Options) (string, error) {
	epochs, iters := opt.scale(12, 16)
	var out []string
	for _, model := range []string{"alexnetsim", "resnet50sim"} {
		base := TrainSpec{
			Model: model, Workers: 4, Batch: 8,
			Epochs: epochs, ItersPerEpoch: iters,
			Density: 0.001, WarmupDensities: PaperWarmup(),
			LR: 0.02, Momentum: 0.9, GradClip: 1, Seed: opt.seed(),
		}
		curves, err := runAlgos(ctx, base, "dense", "gtopk")
		if err != nil {
			return "", err
		}
		out = append(out, CurveTable(
			fmt.Sprintf("Fig 6: %s, P=4, dense vs gTop-k (warmup + rho=0.001)", model), curves))
	}
	return strings.Join(out, "\n"), nil
}

func fig7(ctx context.Context, opt Options) (string, error) {
	epochs, iters := opt.scale(12, 16)
	base := TrainSpec{
		Model: "lstm", Workers: 4, Batch: 8,
		Epochs: epochs, ItersPerEpoch: iters,
		Density: 0.005, LR: 1.0, GradClip: 0.25, Seed: opt.seed(),
	}
	curves, err := runAlgos(ctx, base, "dense", "gtopk")
	if err != nil {
		return "", err
	}
	return CurveTable("Fig 7: LSTM-PTB, P=4, rho=0.005, dense vs gTop-k", curves), nil
}

func fig12(ctx context.Context, opt Options) (string, error) {
	epochs, iters := opt.scale(16, 20)
	var out []string
	for _, model := range []string{"vgg16sim", "resnet20sim"} {
		var curves []*TrainCurve
		for _, rho := range []float64{0.001, 0.0005, 0.0001} {
			spec := TrainSpec{
				Model: model, Workers: 4, Batch: 16,
				Epochs: epochs, ItersPerEpoch: iters,
				Density: rho, Algo: "gtopk",
				// Very low densities defer coordinates for thousands of
				// steps in the residual; the effective step grows with the
				// staleness, so fig12 trains with a smaller LR plus the
				// DGC-style gradient clipping the paper cites [12].
				LR: modelLR(model) / 2, Momentum: 0.9, GradClip: 1, Seed: opt.seed(),
			}
			curve, err := RunTraining(ctx, spec)
			if err != nil {
				return "", err
			}
			curve.Spec.Algo = fmt.Sprintf("rho=%g", rho)
			curves = append(curves, curve)
		}
		out = append(out, CurveTable(
			fmt.Sprintf("Fig 12: %s, P=4, gTop-k under different densities", model), curves))
	}
	return strings.Join(out, "\n"), nil
}

func fig13(ctx context.Context, opt Options) (string, error) {
	// Scaled from the paper's P=32 / B in {128, 1024, 4096} to P=8 /
	// per-worker batch in {4, 32}: the contrast of interest is the number
	// of weight updates per epoch.
	epochs, iters := opt.scale(12, 16)
	tb := metrics.NewTable("model", "batch/worker", "algo", "final loss", "final accuracy")
	for _, model := range []string{"resnet20sim", "vgg16sim"} {
		for _, batch := range []int{4, 32} {
			for _, algo := range []string{"topk", "gtopk"} {
				spec := TrainSpec{
					Model: model, Workers: 8, Batch: batch,
					Epochs: epochs, ItersPerEpoch: iters,
					Density: 0.001, Algo: algo,
					LR: modelLR(model), Momentum: 0.9, GradClip: 1, Seed: opt.seed(),
					EvalBatches: 4,
				}
				curve, err := RunTraining(ctx, spec)
				if err != nil {
					return "", err
				}
				acc := ""
				if len(curve.EpochAcc) > 0 {
					acc = fmt.Sprintf("%.3f", curve.EpochAcc[len(curve.EpochAcc)-1])
				}
				tb.AddRow(model, fmt.Sprintf("%d", batch), algo,
					fmt.Sprintf("%.4f", curve.EpochLoss[len(curve.EpochLoss)-1]), acc)
			}
		}
	}
	return "Fig 13/14: Top-k vs gTop-k across mini-batch sizes (P=8)\n\n" + tb.String(), nil
}

func ablationTree(ctx context.Context, opt Options) (string, error) {
	epochs, iters := opt.scale(12, 16)
	base := TrainSpec{
		Model: "resnet20sim", Workers: 4, Batch: 16,
		Epochs: epochs, ItersPerEpoch: iters,
		Density: 0.001, LR: 0.02, Momentum: 0.9, GradClip: 1, Seed: opt.seed(),
	}
	curves, err := runAlgos(ctx, base, "gtopk", "gtopk-naive")
	if err != nil {
		return "", err
	}
	note := "\nNote: the tree computes a greedy approximation of the exact global\n" +
		"top-k (coordinates dropped at inner merge levels cannot resurface);\n" +
		"matching loss curves show the approximation is benign.\n"
	return CurveTable("Ablation: tree gTop-k vs exact global top-k (ResNet-20, P=4)", curves) + note, nil
}

func ablationResidual(ctx context.Context, opt Options) (string, error) {
	epochs, iters := opt.scale(12, 16)
	var curves []*TrainCurve
	for _, putBack := range []bool{true, false} {
		spec := TrainSpec{
			Model: "resnet20sim", Workers: 4, Batch: 16,
			Epochs: epochs, ItersPerEpoch: iters,
			Density: 0.001, Algo: "gtopk",
			LR: 0.02, Momentum: 0.9, GradClip: 1, Seed: opt.seed(),
		}
		spec.DisablePutBack = !putBack
		curve, err := RunTraining(ctx, spec)
		if err != nil {
			return "", err
		}
		if putBack {
			curve.Spec.Algo = "with put-back"
		} else {
			curve.Spec.Algo = "without put-back"
		}
		curves = append(curves, curve)
	}
	return CurveTable("Ablation: residual put-back of globally-dropped values (Alg. 4 line 10)", curves), nil
}

func ablationQuant(ctx context.Context, opt Options) (string, error) {
	epochs, iters := opt.scale(12, 16)
	base := TrainSpec{
		Model: "mlp", Workers: 4, Batch: 16,
		Epochs: epochs, ItersPerEpoch: iters,
		Density: 0.01, LR: 0.05, Momentum: 0.9, GradClip: 1, Seed: opt.seed(),
	}
	curves, err := runAlgos(ctx, base, "dense", "gtopk", "gtopk-quant8", "terngrad")
	if err != nil {
		return "", err
	}
	// signSGD's fixed-magnitude steps need a much smaller LR and no
	// momentum to avoid oscillating around the optimum.
	signSpec := base
	signSpec.Algo = "signsgd"
	signSpec.LR, signSpec.Momentum = 0.005, 0
	signCurve, err := RunTraining(ctx, signSpec)
	if err != nil {
		return "", err
	}
	curves = append(curves, signCurve)
	note := "\nCompression per iteration (m parameters, rho=0.01):\n" +
		"  dense          4m bytes          (1x)\n" +
		"  terngrad       ~m/4 bytes + scale (~16x; caps at 32x for 1-bit)\n" +
		"  signsgd        m/8 bytes          (32x, the quantization ceiling)\n" +
		"  gtopk          8*rho*m bytes      (~50x at rho=0.01, ~500x at 0.001)\n" +
		"  gtopk-quant8   5*rho*m bytes      (~80x at rho=0.01, ~800x at 0.001)\n"
	return CurveTable("Baselines: sparsification vs quantization families (MLP, P=4)", curves) + note, nil
}

func ablationLayerwise(ctx context.Context, opt Options) (string, error) {
	epochs, iters := opt.scale(12, 16)
	base := TrainSpec{
		Model: "vgg16sim", Workers: 4, Batch: 16,
		Epochs: epochs, ItersPerEpoch: iters,
		Density: 0.001, LR: 0.05, Momentum: 0.9, GradClip: 1, Seed: opt.seed(),
	}
	curves, err := runAlgos(ctx, base, "gtopk", "gtopk-layerwise")
	if err != nil {
		return "", err
	}
	return CurveTable("Extension: layer-wise gTop-k (VGG-16-sim, P=4)", curves), nil
}

func psMode(ctx context.Context, opt Options) (string, error) {
	epochs, iters := opt.scale(12, 16)
	base := TrainSpec{
		Model: "mlp", Workers: 4, Batch: 16,
		Epochs: epochs, ItersPerEpoch: iters,
		Density: 0.01, LR: 0.1, Momentum: 0.9, Seed: opt.seed(),
	}
	curves, err := runAlgos(ctx, base, "gtopk", "gtopk-ps")
	if err != nil {
		return "", err
	}
	cost := AblationPSMode(netsim.Paper1GbE())
	return CurveTable("Extension: PS-mode gTop-k convergence (MLP, P=4)", curves) + "\n" + cost, nil
}

// modelLR returns the tuned learning rate per CPU-scaled model (the
// compute-light ResNet analogues need smaller steps than the fc-heavy
// models at these batch sizes).
func modelLR(model string) float32 {
	switch model {
	case "resnet20sim", "resnet50sim":
		return 0.02
	default:
		return 0.05
	}
}

// runAlgos runs base once per algorithm and returns the curves in order.
func runAlgos(ctx context.Context, base TrainSpec, algos ...string) ([]*TrainCurve, error) {
	curves := make([]*TrainCurve, 0, len(algos))
	for _, algo := range algos {
		spec := base
		spec.Algo = algo
		curve, err := RunTraining(ctx, spec)
		if err != nil {
			return nil, fmt.Errorf("algo %s: %w", algo, err)
		}
		curves = append(curves, curve)
	}
	return curves, nil
}
