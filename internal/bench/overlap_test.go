package bench

import (
	"context"
	"strings"
	"testing"
	"time"

	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/nn/models"
)

func TestWfbpScheduleBounds(t *testing.T) {
	compute := 100 * time.Millisecond
	compress := 10 * time.Millisecond
	comms := []time.Duration{20 * time.Millisecond, 5 * time.Millisecond, 40 * time.Millisecond}

	got := wfbpSchedule(compute, compress, comms)
	if got < compute+compress {
		t.Fatalf("schedule %v below compute+compress floor %v", got, compute+compress)
	}
	var sum time.Duration
	for _, c := range comms {
		sum += c
	}
	serialized := compute + compress + sum
	if got >= serialized {
		t.Fatalf("overlapped schedule %v not below serialized %v", got, serialized)
	}
	if empty := wfbpSchedule(compute, compress, nil); empty != compute+compress {
		t.Fatalf("no-bucket schedule = %v, want %v", empty, compute+compress)
	}
}

// TestBucketedOverlapBeatsSerialized asserts the acceptance property of
// the overlap scenario: for every paper model the overlapped pipeline's
// simulated wall-clock is strictly below the serialized baseline.
func TestBucketedOverlapBeatsSerialized(t *testing.T) {
	model := netsim.Paper1GbE()
	const p, rho = 32, 0.001
	for _, pm := range models.PaperModels() {
		bd := iterBreakdown(model, pm, "gtopk", p)
		comms := bucketComms(model, p, pm.Params, overlapBuckets, rho)
		var sum time.Duration
		for _, c := range comms {
			sum += c
		}
		serialized := bd.Compute + bd.Compress + sum
		overlapped := wfbpSchedule(bd.Compute, bd.Compress, comms)
		if overlapped >= serialized {
			t.Errorf("%s: overlapped %v >= serialized %v", pm.Name, overlapped, serialized)
		}
		if overlapped >= bd.Total() {
			t.Errorf("%s: overlapped %v >= unbucketed serial iteration %v", pm.Name, overlapped, bd.Total())
		}
	}
}

func TestMeasuredOverlapRuns(t *testing.T) {
	out, err := MeasuredOverlap(context.Background(), Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "WARNING") {
		t.Fatalf("measured overlap regressed:\n%s", out)
	}
	for _, want := range []string{"gtopk-bucketed", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryHasBucketedExperiments(t *testing.T) {
	for _, id := range []string{"bucketed-overlap", "bucketed-convergence"} {
		if _, err := Lookup(id); err != nil {
			t.Errorf("experiment %q not registered: %v", id, err)
		}
	}
}
