package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/quant"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// This file is the wire-codec + sharded-selection harness: it measures
// the two iteration-time terms PR 3 left untouched — T_comm's byte
// volume (v1 vs v2 vs v2-fp16 frames through the real collective over
// both fabrics) and T_sparsify (serial vs sharded top-k selection over a
// VGG-16-scale gradient) — and maintains the wire_codec section of
// BENCH_gtopk.json.

// Codec-sweep workload shape. The gradient is layer-structured (see
// layeredGradient): winners cluster in the few large-scale layers, the
// support pattern real convnets produce and the delta codec exploits.
const (
	wireCodecDim      = 1 << 20
	wireCodecQuickDim = 1 << 17
	wireCodecWorkers  = 4
	wireCodecLayers   = 16
	// selectionDim is the paper's "VGG-16-sized" sparsification workload
	// (VGG-16 has ~25.6M convolutional+fc gradients at the paper's scale).
	selectionDim      = 25_000_000
	selectionQuickDim = 2_000_000
)

// WireCodecSection is the wire_codec section of BENCH_gtopk.json.
type WireCodecSection struct {
	// Dim/Workers/Layers describe the codec sweep workload; SelectDim the
	// selection-scaling workload. NumCPU records the measuring machine —
	// measured selection speedups are bounded by it, the recorded
	// critical path is not (see SelectionResult).
	Dim       int               `json:"dim"`
	Workers   int               `json:"workers"`
	Layers    int               `json:"layers"`
	SelectDim int               `json:"select_dim"`
	NumCPU    int               `json:"num_cpu"`
	Codec     []WireCodecResult `json:"codec"`
	Selection []SelectionResult `json:"selection"`
}

// WireCodecResult is one (fabric, density, codec) cell of the sweep.
type WireCodecResult struct {
	Name             string  `json:"name"`
	Fabric           string  `json:"fabric"`
	Rho              float64 `json:"rho"`
	Codec            string  `json:"codec"`
	NsPerOp          int64   `json:"ns_per_op"`
	WireBytesPerRank int64   `json:"wire_bytes_per_rank"`
	// BytesReduction is v1's wire bytes divided by this codec's, for the
	// same fabric and density (1.0 for v1 itself).
	BytesReduction float64 `json:"bytes_reduction"`
	// TallyRatio is the raw-vs-encoded ratio the metrics.WireTally
	// observed — what gtopk-worker logs in real runs.
	TallyRatio float64 `json:"tally_ratio"`
}

// SelectionResult is one shard count of the selection-scaling sweep.
// MeasuredNs is wall time on this machine (bounded by NumCPU);
// CriticalPathNs is max(per-shard select) + merge from the engine's
// per-shard instrumentation — the wall time on a machine with at least
// Shards cores, analogous to the analytic numbers the overlap bench
// records next to its measured ones.
type SelectionResult struct {
	Shards              int     `json:"shards"`
	K                   int     `json:"k"`
	MeasuredNs          int64   `json:"measured_ns_per_op"`
	CriticalPathNs      int64   `json:"critical_path_ns_per_op"`
	MaxShardNs          int64   `json:"max_shard_ns"`
	MergeNs             int64   `json:"merge_ns"`
	SpeedupMeasured     float64 `json:"speedup_measured"`
	SpeedupCriticalPath float64 `json:"speedup_critical_path"`
}

// layeredGradient synthesises a dense gradient with per-layer magnitude
// structure: dim splits into `layers` contiguous segments and segment l
// draws from N(0, decay^l). Top-k winners therefore cluster in the few
// large-scale segments — the support pattern real convnet gradients
// show (the DGC line of work reports the same concentration), and the
// regime the delta codec is designed for.
func layeredGradient(src *prng.Source, dim, layers int, decay float64) []float32 {
	g := make([]float32, dim)
	scale := 1.0
	for l := 0; l < layers; l++ {
		lo, hi := l*dim/layers, (l+1)*dim/layers
		for i := lo; i < hi; i++ {
			g[i] = float32(src.NormFloat64() * scale)
		}
		scale *= decay
	}
	return g
}

// wireCodecVectors builds the per-rank top-k inputs for the codec sweep.
func wireCodecVectors(seed uint64, p, dim, k int) []*sparse.Vector {
	vecs := make([]*sparse.Vector, p)
	for r := 0; r < p; r++ {
		src := prng.New(seed + 31*uint64(r))
		vecs[r] = sparse.TopK(layeredGradient(src, dim, wireCodecLayers, 0.5), k)
	}
	return vecs
}

// measureWireCodec benchmarks the full collective under one codec and
// returns ns/op, per-rank wire bytes and the tally ratio.
func measureWireCodec(fabric string, dim int, rho float64, codec sparse.Codec, seed uint64, nagle bool) (WireCodecResult, error) {
	p := wireCodecWorkers
	k := core.DensityToK(dim, rho)
	vecs := wireCodecVectors(seed, p, dim, k)
	res := WireCodecResult{
		Name:   fmt.Sprintf("gtopk/%s/rho=%g/%s", fabric, rho, codec),
		Fabric: fabric, Rho: rho, Codec: codec.String(),
	}
	var wireBytes int64
	tally := &metrics.WireTally{}
	var errMu sync.Mutex
	var benchErr error
	fail := func(err error) {
		errMu.Lock()
		if benchErr == nil {
			benchErr = err
		}
		errMu.Unlock()
	}
	bres := testing.Benchmark(func(b *testing.B) {
		var fab transport.Fabric
		var err error
		if fabric == "tcp" {
			fab, err = transport.NewTCPWithOptions(p, transport.TCPOptions{
				DisableNoDelay: nagle, WireVersion: codec.WireVersion(),
			})
		} else {
			fab, err = transport.NewInProcWire(p, codec.WireVersion())
		}
		if err != nil {
			fail(err)
			b.Skip(err)
			return
		}
		defer fab.Close()
		comms := make([]*collective.Comm, p)
		outs := make([]sparse.Vector, p)
		for r := range comms {
			comms[r] = collective.New(fab.Conn(r))
			comms[r].SetFP16Values(codec == sparse.CodecV2F16 || codec == sparse.CodecV3F16)
			if codec.Value().Quantized() {
				comms[r].SetCompressor(quant.NewStack(codec.Value(), seed).Fork(uint64(r)))
			}
			comms[r].SetWireTally(tally)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for r := range comms {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					if err := core.GTopKAllReduceInto(context.Background(), comms[rank],
						vecs[rank], k, core.ChunksFor(k), &outs[rank]); err != nil {
						fail(err)
					}
				}(r)
			}
			wg.Wait()
		}
		b.StopTimer()
		wireBytes = comms[0].Stats().BytesSent / int64(b.N)
	})
	if benchErr != nil {
		return res, fmt.Errorf("%s: %w", res.Name, benchErr)
	}
	res.NsPerOp = bres.NsPerOp()
	res.WireBytesPerRank = wireBytes
	res.TallyRatio = tally.Snapshot().Ratio()
	return res, nil
}

// measureSelection times the sharded selection engine at each shard
// count over one layered gradient, reporting measured wall time and the
// instrumented critical path.
func measureSelection(dim int, shardCounts []int, seed uint64) []SelectionResult {
	src := prng.New(seed + 999)
	g := layeredGradient(src, dim, 16, 0.6)
	k := core.DensityToK(dim, 0.001)
	reps := 3
	if dim <= selectionQuickDim {
		reps = 2
	}
	out := make([]SelectionResult, 0, len(shardCounts))
	var serialNs, serialCriticalNs int64
	for _, shards := range shardCounts {
		// Wall time of the real (concurrent) engine on this machine.
		sel := sparse.NewShardSelector(shards)
		// Per-shard compute time, measured in isolation: sequential
		// execution keeps one shard's wall clock from absorbing its
		// neighbours' work when the machine has fewer cores than shards,
		// which is what makes max(shard)+merge an honest multicore model.
		iso := sparse.NewShardSelector(shards)
		iso.SetTimed(true)
		iso.SetSequential(true)
		dst := &sparse.Vector{}
		sel.TopKInto(dst, g, k) // warm pools and per-shard scratch
		iso.TopKInto(dst, g, k)
		var measured, critical, maxShard, merge int64
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			sel.TopKInto(dst, g, k)
			measured += time.Since(start).Nanoseconds()

			iso.TopKInto(dst, g, k)
			per, mg := iso.Timings()
			var worst time.Duration
			for _, d := range per {
				if d > worst {
					worst = d
				}
			}
			critical += (worst + mg).Nanoseconds()
			maxShard += worst.Nanoseconds()
			merge += mg.Nanoseconds()
		}
		r := SelectionResult{
			Shards: shards, K: k,
			MeasuredNs:     measured / int64(reps),
			CriticalPathNs: critical / int64(reps),
			MaxShardNs:     maxShard / int64(reps),
			MergeNs:        merge / int64(reps),
		}
		if shards == 1 {
			serialNs = r.MeasuredNs
			serialCriticalNs = r.CriticalPathNs
		}
		// Like-for-like baselines: measured speedup against the measured
		// serial run, critical-path speedup against the serial critical
		// path (identical measurement mode, so shards=1 reads 1.00x).
		if serialNs > 0 {
			r.SpeedupMeasured = float64(serialNs) / float64(r.MeasuredNs)
		}
		if serialCriticalNs > 0 {
			r.SpeedupCriticalPath = float64(serialCriticalNs) / float64(r.CriticalPathNs)
		}
		out = append(out, r)
	}
	return out
}

// WireCodec runs the codec sweep and the selection scaling sweep and
// returns the rendered tables plus the JSON section.
func WireCodec(_ context.Context, opt Options) (string, *WireCodecSection, error) {
	dim := wireCodecDim
	selDim := selectionDim
	fabrics := []string{"inproc", "tcp"}
	densities := []float64{0.001, 0.01}
	if opt.Quick {
		dim = wireCodecQuickDim
		selDim = selectionQuickDim
		fabrics = []string{"inproc"}
		densities = []float64{0.001}
	}
	shardCounts := []int{1, 2, 4}
	if opt.SelectShards > 1 {
		shardCounts = []int{1, opt.SelectShards}
	}

	section := &WireCodecSection{
		Dim: dim, Workers: wireCodecWorkers, Layers: wireCodecLayers,
		SelectDim: selDim, NumCPU: runtime.NumCPU(),
	}

	var sb strings.Builder
	sb.WriteString("Wire codec v2 + sharded selection (real pipeline, seeded)\n")
	fmt.Fprintf(&sb, "P=%d, dim=%d, %d-layer gradient, %d CPUs\n\n", wireCodecWorkers, dim, wireCodecLayers, section.NumCPU)

	codecTb := metrics.NewTable("config", "ns/op", "wire B/rank", "reduction vs v1", "tally ratio")
	v1Bytes := map[string]int64{}
	for _, fabric := range fabrics {
		for _, rho := range densities {
			for _, codec := range []sparse.Codec{sparse.CodecV1, sparse.CodecV2, sparse.CodecV2F16} {
				r, err := measureWireCodec(fabric, dim, rho, codec, opt.seed(), opt.TCPNagle)
				if err != nil {
					return "", nil, err
				}
				key := fmt.Sprintf("%s/%g", fabric, rho)
				if codec == sparse.CodecV1 {
					v1Bytes[key] = r.WireBytesPerRank
				}
				if base := v1Bytes[key]; base > 0 && r.WireBytesPerRank > 0 {
					r.BytesReduction = float64(base) / float64(r.WireBytesPerRank)
				}
				section.Codec = append(section.Codec, r)
				codecTb.AddRow(r.Name, fmt.Sprint(r.NsPerOp), fmt.Sprint(r.WireBytesPerRank),
					fmt.Sprintf("%.2fx", r.BytesReduction), fmt.Sprintf("%.2fx", r.TallyRatio))
			}
		}
	}
	sb.WriteString(codecTb.String())
	sb.WriteString("\nreduction = v1 wire bytes / codec wire bytes, same fabric and rho;\ntally ratio = flat-equivalent / encoded bytes per frame (what workers log).\n\n")

	section.Selection = measureSelection(selDim, shardCounts, opt.seed())
	selTb := metrics.NewTable("shards", "measured ns/op", "critical-path ns/op", "max-shard ns", "merge ns", "speedup (crit. path)")
	for _, r := range section.Selection {
		selTb.AddRow(fmt.Sprint(r.Shards), fmt.Sprint(r.MeasuredNs), fmt.Sprint(r.CriticalPathNs),
			fmt.Sprint(r.MaxShardNs), fmt.Sprint(r.MergeNs), fmt.Sprintf("%.2fx", r.SpeedupCriticalPath))
	}
	fmt.Fprintf(&sb, "Sharded selection over a %d-element gradient (k=%d, rho=0.001):\n\n", selDim, section.Selection[0].K)
	sb.WriteString(selTb.String())
	sb.WriteString("\ncritical path = max(per-shard select) + merge, from the engine's\nper-shard instrumentation: the wall time given >= shards cores. On this\nmachine measured wall time is bounded by NumCPU; results are\nbit-identical to serial selection at every shard count (asserted by\ninternal/sparse/shard_test.go).\n")
	return sb.String(), section, nil
}

// WriteWireCodecJSON runs the harness and folds the wire_codec section
// into BENCH_gtopk.json (or opt.JSONPath), preserving the hotpath
// experiment's sections.
func WriteWireCodecJSON(ctx context.Context, opt Options) (string, error) {
	out, section, err := WireCodec(ctx, opt)
	if err != nil {
		return "", err
	}
	path := opt.JSONPath
	if path == "" {
		path = "BENCH_gtopk.json"
	}
	report, err := loadHotPathReport(path)
	if err != nil {
		// No (or unreadable) artifact: start a minimal report carrying
		// just this section plus the environment stamp.
		report = &hotPathReport{
			Schema:      hotPathSchema,
			GeneratedBy: "gtopk-bench -exp wire-codec",
			Seed:        opt.seed(),
			Dim:         hotPathDim,
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
		}
		report.Baseline.Commit = baselineCommit
		report.Baseline.Results = baselineHotPath
		report.Prev.Commit = prevCommit
		report.Prev.Results = prevHotPath
	}
	report.WireCodec = section
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: write %s: %w", path, err)
	}
	return out + fmt.Sprintf("\nupdated %s (wire_codec section: %d codec cells, %d shard counts)\n",
		path, len(section.Codec), len(section.Selection)), nil
}
