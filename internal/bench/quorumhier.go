package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// This file is the hierarchical quorum experiment: the straggler
// tolerance of the quorum (quorum.go) composed with the two-level
// hierarchy at the P >= 64 scale where the hierarchy wins. One rank sits
// alone across a WAN boundary inside an otherwise-datacenter world and
// its outgoing frames are delayed far past the per-level deadlines; the
// sweep contrasts the full-sync hierarchical anchor (q_g = G, q_l = all
// groups — the round always waits for the WAN member) with two partial
// regimes: an intra-group quorum that excludes the slow MEMBER
// (q_g = G−1), and a leader-level quorum that drops the slow member's
// whole GROUP (q_l = ⌈P/G⌉−1, reached because its leader — stuck
// waiting for a full intra gather — misses the leader deadline as a
// unit). Every round is charged per participating link on the
// heterogeneous α-β model, replica agreement is verified bitwise, and
// the missed set must match the deterministic straggler schedule before
// a row is recorded.

const (
	// quorumHierP/quorumHierG are the committed world shape: the P >= 64
	// regime the hierarchy crossover sweep shows opening, split G ways.
	quorumHierP = 64
	quorumHierG = 4
	// quorumHierRounds is the number of consecutive rounds each row runs
	// (agreement and the missed set are verified on every one).
	quorumHierRounds = 3
)

// quorumHierLevels pins the per-level deadline budgets: gather levels
// small enough that the 300ms injected delay misses them by >10x, and a
// broadcast budget generous enough that the verdict retry window (8
// attempts of 2x the budget) comfortably survives the anchor rows'
// full-sync waits.
func quorumHierLevels() core.LevelTimeouts {
	return core.LevelTimeouts{
		Group:     15 * time.Millisecond,
		Leader:    15 * time.Millisecond,
		Broadcast: 45 * time.Millisecond,
	}
}

// QuorumHierResult is one swept (q_g, q_l) configuration.
type QuorumHierResult struct {
	QG int `json:"q_g"`
	QL int `json:"q_l"`
	// MissedRanks is the size of the per-round missed set (0 on the
	// full-sync anchor, 1 when the slow member alone is excluded, G when
	// its whole group misses the leader round).
	MissedRanks int `json:"missed_ranks"`
	// MissedRounds counts rounds any contribution missed (refunded to the
	// owners' residuals by the aggregator in training use).
	MissedRounds int `json:"missed_rounds"`
	// SimUS is the fast ranks' critical path: the maximum simulated clock
	// across the ranks outside the missed set, summed over all rounds.
	SimUS int64 `json:"sim_us"`
	// Speedup is the full-sync anchor's SimUS over this row's.
	Speedup float64 `json:"speedup"`
}

// QuorumHierSection is the quorum_hier section of BENCH_gtopk.json.
type QuorumHierSection struct {
	Dim          int                `json:"dim"`
	Rho          float64            `json:"rho"`
	K            int                `json:"k"`
	P            int                `json:"p"`
	G            int                `json:"g"`
	NumGroups    int                `json:"num_groups"`
	SlowRank     int                `json:"slow_rank"`
	Rounds       int                `json:"rounds"`
	TimeoutMS    int64              `json:"timeout_ms"`
	GroupMS      int64              `json:"group_ms"`
	LeaderMS     int64              `json:"leader_ms"`
	BroadcastMS  int64              `json:"broadcast_ms"`
	DelayMS      int64              `json:"delay_ms"`
	IntraAlphaUS float64            `json:"intra_alpha_us"`
	IntraBetaNS  float64            `json:"intra_beta_ns"`
	InterAlphaUS float64            `json:"inter_alpha_us"`
	InterBetaNS  float64            `json:"inter_beta_ns"`
	Rows         []QuorumHierResult `json:"rows"`
}

// runQuorumHierConfig runs `rounds` hierarchical quorum rounds at the
// given configuration on a fresh fault-injected in-process fabric and
// returns the fast ranks' total simulated time. Every round is checked
// for bitwise replica agreement and for the exact expected missed set
// (the injected delay dwarfs every deadline, so the schedule is
// deterministic) before it counts.
func runQuorumHierConfig(vecs []*sparse.Vector, k, g int, qc core.QuorumConfig, rounds, slow int, wantMissed []int, lm *netsim.LinkModel, plan transport.FaultPlan) (time.Duration, error) {
	p := len(vecs)
	base, err := transport.NewInProc(p)
	if err != nil {
		return 0, err
	}
	fab := transport.NewFaultInjector(base, plan)
	defer fab.Close()

	var (
		wg     sync.WaitGroup
		clocks = make([]time.Duration, p)
		outs   = make([][]*sparse.Vector, rounds)
		missed = make([][][]int, rounds)
		errs   = make([]error, p)
	)
	for rd := range outs {
		outs[rd] = make([]*sparse.Vector, p)
		missed[rd] = make([][]int, p)
	}
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var clock netsim.Clock
			comm := collective.New(fab.Conn(rank)).WithClock(&clock, lm.Intra).WithLinks(lm)
			for rd := 0; rd < rounds; rd++ {
				out, _, miss, err := core.HierQuorumGTopKAllReduce(context.Background(), comm, vecs[rank].Clone(), k, g, qc)
				if err != nil {
					errs[rank] = fmt.Errorf("round %d: %w", rd, err)
					return
				}
				outs[rd][rank] = out
				missed[rd][rank] = miss
			}
			clocks[rank] = clock.Now()
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("rank %d: %w", rank, err)
		}
	}

	excluded := make(map[int]bool, len(wantMissed)+1)
	excluded[slow] = true
	for _, r := range wantMissed {
		excluded[r] = true
	}
	for rd := 0; rd < rounds; rd++ {
		for r := 1; r < p; r++ {
			if !vectorsEqualBits(outs[rd][0], outs[rd][r]) {
				return 0, fmt.Errorf("q_g=%d q_l=%d round %d: replicas diverged (rank %d != rank 0)", qc.Q, qc.LeaderQ, rd, r)
			}
		}
		for r := 0; r < p; r++ {
			if fmt.Sprint(missed[rd][r]) != fmt.Sprint(wantMissed) {
				return 0, fmt.Errorf("q_g=%d q_l=%d round %d: rank %d saw missed %v, want %v (delay dwarfs every deadline, the schedule must be deterministic)",
					qc.Q, qc.LeaderQ, rd, r, missed[rd][r], wantMissed)
			}
		}
	}

	var fastCritical time.Duration
	for r := 0; r < p; r++ {
		if !excluded[r] && clocks[r] > fastCritical {
			fastCritical = clocks[r]
		}
	}
	return fastCritical, nil
}

// QuorumHier runs the sweep and returns the rendered table plus the
// section. Quick mode shrinks the world and the round count.
func QuorumHier(_ context.Context, opt Options) (string, *QuorumHierSection, error) {
	p, g, rounds, dim := quorumHierP, quorumHierG, quorumHierRounds, hotPathDim
	if opt.Quick {
		p, rounds, dim = 16, 2, hotPathDim/4
	}
	numGroups := (p + g - 1) / g
	k := core.DensityToK(dim, quorumRho)
	slow := p - 1 // last member of the last hierarchy group, never a leader
	intra := netsim.Paper1GbE()
	inter := quorumWAN()
	// Group the fast ranks together and leave the slow rank alone across
	// the WAN boundary: every link it contributes over is an Inter link.
	// Note the hierarchy group (g) and the link group (p-1) partition the
	// ranks independently — the slow member's hierarchy group straddles
	// the WAN, which is exactly the regime the per-level budgets price.
	lm, err := netsim.NewLinkModel(intra, inter, p-1)
	if err != nil {
		return "", nil, err
	}
	plan := transport.FaultPlan{Seed: opt.seed(), Delay: quorumDelay, SlowRanks: []int{slow}}
	vecs := hotPathVectors(opt.seed(), p, dim, k)
	levels := quorumHierLevels()

	section := &QuorumHierSection{
		Dim: dim, Rho: quorumRho, K: k, P: p, G: g, NumGroups: numGroups,
		SlowRank: slow, Rounds: rounds,
		TimeoutMS:    quorumTimeout.Milliseconds(),
		GroupMS:      levels.Group.Milliseconds(),
		LeaderMS:     levels.Leader.Milliseconds(),
		BroadcastMS:  levels.Broadcast.Milliseconds(),
		DelayMS:      quorumDelay.Milliseconds(),
		IntraAlphaUS: float64(intra.Alpha) / float64(time.Microsecond),
		IntraBetaNS:  float64(intra.Beta) / float64(time.Nanosecond),
		InterAlphaUS: float64(inter.Alpha) / float64(time.Microsecond),
		InterBetaNS:  float64(inter.Beta) / float64(time.Nanosecond),
	}

	// The slow member's whole group, missed as a unit when its leader —
	// stuck waiting out a full intra gather — misses the leader deadline.
	slowGroup := make([]int, 0, g)
	for r := (slow / g) * g; r < p; r++ {
		slowGroup = append(slowGroup, r)
	}
	configs := []struct {
		qg, ql     int
		wantMissed []int
	}{
		// Full-sync anchor: both levels wait for everyone, every round
		// pays the WAN member's gather link.
		{g, numGroups, nil},
		// Intra-group quorum: the slow member's group closes at the Group
		// deadline without it; every other rank participates.
		{g - 1, numGroups, []int{slow}},
		// Leader-level quorum: the slow member's group insists on a full
		// intra gather, so its leader frame is ~delay late and the root
		// closes the leader round without the whole group.
		{g, numGroups - 1, slowGroup},
	}

	var fullSync time.Duration
	for _, cfg := range configs {
		qc := core.QuorumConfig{Q: cfg.qg, LeaderQ: cfg.ql, Timeout: quorumTimeout, Levels: levels}
		sim, err := runQuorumHierConfig(vecs, k, g, qc, rounds, slow, cfg.wantMissed, lm, plan)
		if err != nil {
			return "", nil, fmt.Errorf("quorum_hier q_g=%d q_l=%d: %w", cfg.qg, cfg.ql, err)
		}
		if cfg.wantMissed == nil {
			fullSync = sim
		}
		missedRounds := 0
		if len(cfg.wantMissed) > 0 {
			missedRounds = rounds
		}
		speedup := 1.0
		if fullSync > 0 && sim > 0 {
			speedup = float64(fullSync) / float64(sim)
		}
		section.Rows = append(section.Rows, QuorumHierResult{
			QG:           cfg.qg,
			QL:           cfg.ql,
			MissedRanks:  len(cfg.wantMissed),
			MissedRounds: missedRounds,
			SimUS:        sim.Microseconds(),
			Speedup:      speedup,
		})
	}

	var sb strings.Builder
	sb.WriteString("Hierarchical quorum: per-level deadline budgets under a WAN straggler (real collective, injected faults)\n")
	fmt.Fprintf(&sb, "dim=%d, rho=%g (k=%d), P=%d split into %d groups of G=%d; rank %d (a non-leader\nmember) alone across the WAN boundary with its outgoing frames delayed %v against\nper-level budgets group=%v leader=%v broadcast=%v; intra %v+%v/elem,\ninter %v+%v/elem; times are the participating ranks' simulated critical path over\n%d rounds (bitwise replica agreement + exact missed set verified per round)\n\n",
		section.Dim, section.Rho, section.K, section.P, section.NumGroups, section.G, section.SlowRank,
		quorumDelay, levels.Group, levels.Leader, levels.Broadcast,
		intra.Alpha, intra.Beta, inter.Alpha, inter.Beta, rounds)
	tb := metrics.NewTable("q_g", "q_l", "missed ranks", "missed rounds", "sim time", "speedup vs full sync")
	for _, r := range section.Rows {
		tb.AddRow(fmt.Sprint(r.QG), fmt.Sprint(r.QL), fmt.Sprint(r.MissedRanks), fmt.Sprint(r.MissedRounds),
			fmt.Sprintf("%.2fms", float64(r.SimUS)/1000), fmt.Sprintf("%.2fx", r.Speedup))
	}
	sb.WriteString(tb.String())
	sb.WriteString("\nAt q_g=G, q_l=all the budgets only guard liveness: the slow member's group waits\nfor its WAN frame and every rank pays that link. Dropping EITHER quorum by one\ncloses the affected level at its budget — the slow member (or its whole group)\nis refunded to residual and the fast ranks' rounds never touch a WAN link.\n")
	return sb.String(), section, nil
}

// WriteQuorumHierJSON runs the sweep and folds the quorum_hier section
// into BENCH_gtopk.json (or opt.JSONPath), preserving the other
// experiments' sections.
func WriteQuorumHierJSON(ctx context.Context, opt Options) (string, error) {
	out, section, err := QuorumHier(ctx, opt)
	if err != nil {
		return "", err
	}
	path := opt.JSONPath
	if path == "" {
		path = "BENCH_gtopk.json"
	}
	report, err := loadHotPathReport(path)
	if err != nil {
		// No (or unreadable) artifact: start a minimal report carrying
		// just this section plus the environment stamp.
		report = &hotPathReport{
			Schema:      hotPathSchema,
			GeneratedBy: "gtopk-bench -exp quorum_hier",
			Seed:        opt.seed(),
			Dim:         hotPathDim,
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
		}
		report.Baseline.Commit = baselineCommit
		report.Baseline.Results = baselineHotPath
		report.Prev.Commit = prevCommit
		report.Prev.Results = prevHotPath
	}
	report.QuorumHier = section
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: write %s: %w", path, err)
	}
	return out + fmt.Sprintf("\nwrote %s (%d quorum_hier rows)\n", path, len(section.Rows)), nil
}
