package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// This file is the hot-path benchmark harness: it measures the REAL
// aggregation pipeline — GTopKAllReduce over the in-process and
// TCP-loopback fabrics, the bucketed overlapped pipeline, and the merge
// primitives — with seeded, reproducible inputs, and emits the repo's
// perf-trajectory artifact BENCH_gtopk.json (ns/op, B/op, allocs/op,
// bytes on the wire, and speedups against the recorded pre-optimization
// baseline).

// hotPathDim is the dense dimension every hot-path configuration uses:
// large enough that rho=0.001 gives the paper's k=100-scale payloads,
// small enough that a full sweep runs in tens of seconds.
const hotPathDim = 100_000

// hotPathSchema versions BENCH_gtopk.json. v2 added per-row tail-latency
// percentiles plus the prev/vs_prev sections (previous PR's committed
// numbers and speedups against them).
const hotPathSchema = "gtopk-hotpath-bench/v2"

// hotPathWarmup/hotPathRounds size the two-phase measurement: warmup
// rounds (barriered) let buffer pools fill and TCP windows open before
// the clock starts; the timed phase then runs hotPathRounds rounds with
// all ranks free-running — successive collectives are isolated by tag
// claims, so rounds overlap exactly as in a training loop — and stamps
// each rank's per-round completion against one shared start time.
const (
	hotPathWarmup = 25
	hotPathRounds = 240
)

// hotPathPasses is the number of independent timed passes per cell; the
// reported result is the pass with the lowest mean. Scheduler and VM
// noise on a shared host is strictly one-sided — preemptions and
// frequency dips only ever add time — so the lower of two pass means is
// a tighter estimate of the code's intrinsic cost than either pass
// alone, while the kept pass's own percentile series still reports the
// tail faithfully.
const hotPathPasses = 2

// LatencyPercentiles summarizes the tail of one configuration's timed
// phase: nearest-rank percentiles over the per-round latency series.
type LatencyPercentiles struct {
	// Rounds is the number of timed rounds the percentiles summarize.
	Rounds int `json:"rounds"`
	// P50/P99/P999 are nearest-rank order statistics in nanoseconds.
	P50  int64 `json:"p50_ns"`
	P99  int64 `json:"p99_ns"`
	P999 int64 `json:"p999_ns"`
}

// percentilesOf computes nearest-rank percentiles (index ceil(q*N)-1 of
// the ascending-sorted series) so every reported value is a latency that
// actually occurred, not an interpolation.
func percentilesOf(rounds []time.Duration) *LatencyPercentiles {
	sorted := append([]time.Duration(nil), rounds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	nearest := func(q float64) int64 {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		return int64(sorted[idx])
	}
	return &LatencyPercentiles{
		Rounds: len(sorted),
		P50:    nearest(0.50),
		P99:    nearest(0.99),
		P999:   nearest(0.999),
	}
}

// HotPathResult is one measured configuration of the aggregation
// pipeline.
type HotPathResult struct {
	// Name identifies the configuration, e.g. "gtopk/tcp/rho=0.001/P=8".
	Name string `json:"name"`
	// NsPerOp is wall time per aggregation round (all ranks completing).
	NsPerOp int64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are heap allocation totals per round
	// across all ranks.
	BytesPerOp  int64 `json:"b_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// WireBytesPerRank is the payload volume one rank sends per round
	// (zero for single-process primitives with no communicator).
	WireBytesPerRank int64 `json:"wire_bytes_per_rank,omitempty"`
	// Chunks is the per-round chunk frame count the collective ran with
	// (ChunksFor(k); zero for non-collective entries).
	Chunks int `json:"chunks,omitempty"`
	// Percentiles is the round-latency tail of the timed phase. Live
	// measurements always carry it; recorded baselines predating the v2
	// schema omit it.
	Percentiles *LatencyPercentiles `json:"percentiles,omitempty"`
}

// HotPathSpeedup pairs a configuration with its measured improvement
// over the recorded baseline.
type HotPathSpeedup struct {
	Name     string  `json:"name"`
	Baseline int64   `json:"baseline_ns_per_op"`
	Current  int64   `json:"current_ns_per_op"`
	Speedup  float64 `json:"speedup"`
}

// hotPathReport is the schema of BENCH_gtopk.json.
type hotPathReport struct {
	Schema      string `json:"schema"`
	GeneratedBy string `json:"generated_by"`
	Seed        uint64 `json:"seed"`
	Dim         int    `json:"dim"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	// Baseline holds the pre-optimization numbers (see baselineHotPath).
	Baseline struct {
		Commit  string          `json:"commit"`
		Results []HotPathResult `json:"results"`
	} `json:"baseline"`
	// Prev holds the previous PR's committed hot path (see prevHotPath) —
	// the reference the fast-kernel + vectored-I/O acceptance bar is
	// measured against.
	Prev struct {
		Commit  string          `json:"commit"`
		Results []HotPathResult `json:"results"`
	} `json:"prev"`
	Current struct {
		Results []HotPathResult `json:"results"`
	} `json:"current"`
	Speedups []HotPathSpeedup `json:"speedups"`
	// VsPrev reports the same configurations against Prev instead of the
	// original pre-optimization baseline.
	VsPrev []HotPathSpeedup `json:"vs_prev"`
	// WireCodec is the v2-codec + sharded-selection section maintained by
	// the wire-codec experiment; the hotpath experiment preserves it.
	WireCodec *WireCodecSection `json:"wire_codec,omitempty"`
	// Hierarchy is the flat-vs-hierarchical crossover sweep maintained
	// by the hierarchy experiment; the other experiments preserve it.
	Hierarchy *HierarchySection `json:"hierarchy,omitempty"`
	// Compound is the codec-v3 Compressor-stack + adaptive-density
	// section maintained by the compound experiment; the other
	// experiments preserve it.
	Compound *CompoundSection `json:"compound,omitempty"`
	// Quorum is the straggler-tolerant quorum sweep maintained by the
	// quorum experiment; the other experiments preserve it.
	Quorum *QuorumSection `json:"quorum,omitempty"`
	// QuorumHier is the hierarchical quorum sweep (per-level deadline
	// budgets under a WAN straggler) maintained by the quorum_hier
	// experiment; the other experiments preserve it.
	QuorumHier *QuorumHierSection `json:"quorum_hier,omitempty"`
}

// loadHotPathReport parses an existing BENCH_gtopk.json so one
// experiment can refresh its section without clobbering the other's.
func loadHotPathReport(path string) (*hotPathReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	report := &hotPathReport{}
	if err := json.Unmarshal(data, report); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return report, nil
}

// baselineHotPath records the pre-optimization hot path measured at
// commit 22e3930 (Decode→Add→TopKSparse per round, monolithic frames,
// unbuffered TCP writes, closure-based quickselect) with this harness's
// exact workload shape: dim=100000, seeded top-k inputs, one
// GTopKAllReduce across all ranks per op. These are the numbers the
// perf trajectory starts from; Run measures the same matrix live and
// reports speedups against them.
var baselineHotPath = []HotPathResult{
	{Name: "gtopk/inproc/rho=0.001/P=2", NsPerOp: 38334, BytesPerOp: 7015, AllocsPerOp: 30},
	{Name: "gtopk/inproc/rho=0.001/P=4", NsPerOp: 124066, BytesPerOp: 17209, AllocsPerOp: 76},
	{Name: "gtopk/inproc/rho=0.001/P=8", NsPerOp: 283980, BytesPerOp: 37605, AllocsPerOp: 168},
	{Name: "gtopk/inproc/rho=0.01/P=2", NsPerOp: 358354, BytesPerOp: 58345, AllocsPerOp: 30},
	{Name: "gtopk/inproc/rho=0.01/P=4", NsPerOp: 1048739, BytesPerOp: 141898, AllocsPerOp: 76},
	{Name: "gtopk/inproc/rho=0.01/P=8", NsPerOp: 2173380, BytesPerOp: 309000, AllocsPerOp: 168},
	{Name: "gtopk/tcp/rho=0.001/P=2", NsPerOp: 40211, BytesPerOp: 8854, AllocsPerOp: 34},
	{Name: "gtopk/tcp/rho=0.001/P=4", NsPerOp: 122840, BytesPerOp: 22741, AllocsPerOp: 88},
	{Name: "gtopk/tcp/rho=0.001/P=8", NsPerOp: 302827, BytesPerOp: 50512, AllocsPerOp: 196},
	{Name: "gtopk/tcp/rho=0.01/P=2", NsPerOp: 315296, BytesPerOp: 74784, AllocsPerOp: 34},
	{Name: "gtopk/tcp/rho=0.01/P=4", NsPerOp: 1045461, BytesPerOp: 191216, AllocsPerOp: 88},
	{Name: "gtopk/tcp/rho=0.01/P=8", NsPerOp: 2316026, BytesPerOp: 424096, AllocsPerOp: 197},
}

// baselineCommit is where baselineHotPath was measured.
const baselineCommit = "22e3930"

// prevHotPath records the hot path as committed at prevCommit (the
// straggler-tolerant-quorum PR, scalar kernels, per-chunk sends, one op
// timed per barriered round). The fast-kernel + vectored-I/O work is
// accepted against these rows: the P=8 aggregation configurations must
// show >= 2x.
var prevHotPath = []HotPathResult{
	{Name: "gtopk/inproc/rho=0.001/P=2", NsPerOp: 9706, BytesPerOp: 1360, AllocsPerOp: 8, WireBytesPerRank: 808, Chunks: 1},
	{Name: "gtopk/inproc/rho=0.001/P=4", NsPerOp: 23120, BytesPerOp: 1728, AllocsPerOp: 16, WireBytesPerRank: 1616, Chunks: 1},
	{Name: "gtopk/inproc/rho=0.001/P=8", NsPerOp: 65419, BytesPerOp: 2468, AllocsPerOp: 32, WireBytesPerRank: 2424, Chunks: 1},
	{Name: "gtopk/inproc/rho=0.01/P=2", NsPerOp: 83936, BytesPerOp: 12918, AllocsPerOp: 14, WireBytesPerRank: 8024, Chunks: 3},
	{Name: "gtopk/inproc/rho=0.01/P=4", NsPerOp: 305951, BytesPerOp: 13973, AllocsPerOp: 30, WireBytesPerRank: 16048, Chunks: 3},
	{Name: "gtopk/inproc/rho=0.01/P=8", NsPerOp: 740956, BytesPerOp: 16460, AllocsPerOp: 62, WireBytesPerRank: 24072, Chunks: 3},
	{Name: "gtopk/tcp/rho=0.001/P=2", NsPerOp: 22663, BytesPerOp: 354, AllocsPerOp: 9, WireBytesPerRank: 808, Chunks: 1},
	{Name: "gtopk/tcp/rho=0.001/P=4", NsPerOp: 64459, BytesPerOp: 797, AllocsPerOp: 21, WireBytesPerRank: 1616, Chunks: 1},
	{Name: "gtopk/tcp/rho=0.001/P=8", NsPerOp: 170902, BytesPerOp: 2123, AllocsPerOp: 45, WireBytesPerRank: 2424, Chunks: 1},
	{Name: "gtopk/tcp/rho=0.01/P=2", NsPerOp: 110157, BytesPerOp: 690, AllocsPerOp: 17, WireBytesPerRank: 8024, Chunks: 3},
	{Name: "gtopk/tcp/rho=0.01/P=4", NsPerOp: 394702, BytesPerOp: 2001, AllocsPerOp: 45, WireBytesPerRank: 16048, Chunks: 3},
	{Name: "gtopk/tcp/rho=0.01/P=8", NsPerOp: 1006603, BytesPerOp: 7505, AllocsPerOp: 101, WireBytesPerRank: 24072, Chunks: 3},
	{Name: "gtopk-bucketed/inproc/B=1/P=4", NsPerOp: 12868561, BytesPerOp: 55056, AllocsPerOp: 47},
	{Name: "gtopk-bucketed/inproc/B=4/P=4", NsPerOp: 14373033, BytesPerOp: 47870, AllocsPerOp: 104},
	{Name: "topk-select/nnz=2000/k=1000", NsPerOp: 57060},
	{Name: "decode-view/k=1000", NsPerOp: 1133},
	{Name: "merge-round-from-wire/k=1000", NsPerOp: 60801},
}

// prevCommit is where prevHotPath was measured.
const prevCommit = "f09d24e"

// hotPathVectors builds the deterministic per-rank top-k inputs.
func hotPathVectors(seed uint64, p, dim, k int) []*sparse.Vector {
	vecs := make([]*sparse.Vector, p)
	for r := 0; r < p; r++ {
		src := prng.New(seed + uint64(r)*1000)
		g := make([]float32, dim)
		for i := range g {
			g[i] = float32(src.NormFloat64())
		}
		vecs[r] = sparse.TopK(g, k)
	}
	return vecs
}

// measureRounds is the two-phase harness core shared by the collective
// and bucketed measurements: round(rank) runs one aggregation round for
// one rank. The warmup phase barriers between rounds while pools fill
// and connections settle; each timed pass launches one long-lived
// goroutine per rank, each free-running through hotPathRounds rounds
// (tag claims isolate successive collectives, so no barrier is needed
// and cross-round pipeline overlap matches a real training loop) and
// stamping its completion of every round against a shared start time.
// hotPathPasses timed passes run back to back and the pass with the
// lowest mean is reported. The per-round latency series is the
// difference sequence of the all-ranks completion times (max across
// ranks — monotone, since each rank's stamps increase), which exposes
// the tail stalls a mean hides. Allocation figures come from
// runtime.MemStats deltas around each timed pass, divided per round
// across all ranks.
func measureRounds(p int, round func(rank int) error) (HotPathResult, error) {
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for i := 0; i < hotPathWarmup; i++ {
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if err := round(rank); err != nil {
					fail(err)
				}
			}(r)
		}
		wg.Wait()
		if firstErr != nil {
			return HotPathResult{}, firstErr
		}
	}

	stamps := make([][]time.Duration, p)
	for r := range stamps {
		stamps[r] = make([]time.Duration, hotPathRounds)
	}
	onePass := func() (HotPathResult, error) {
		// Flush pass garbage (input vectors, fabric wire-up) and return the
		// freed pages before the clock starts, so neither a GC triggered by
		// dead setup allocations nor the background scavenger's madvise work
		// lands inside the timed window as artificial tail latency.
		debug.FreeOSMemory()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				for i := 0; i < hotPathRounds; i++ {
					if err := round(rank); err != nil {
						fail(err)
						return
					}
					stamps[rank][i] = time.Since(t0)
				}
			}(r)
		}
		wg.Wait()
		runtime.ReadMemStats(&m1)
		if firstErr != nil {
			return HotPathResult{}, firstErr
		}

		rounds := make([]time.Duration, hotPathRounds)
		prev := time.Duration(0)
		for i := range rounds {
			done := stamps[0][i]
			for r := 1; r < p; r++ {
				if stamps[r][i] > done {
					done = stamps[r][i]
				}
			}
			rounds[i] = done - prev
			prev = done
		}
		return HotPathResult{
			NsPerOp:     int64(prev) / hotPathRounds,
			BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / hotPathRounds,
			AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / hotPathRounds,
			Percentiles: percentilesOf(rounds),
		}, nil
	}
	best, err := onePass()
	if err != nil {
		return HotPathResult{}, err
	}
	// Best-of-N passes (see hotPathPasses): external stalls only inflate a
	// pass, never deflate it, so the lowest pass mean is the noise-robust
	// estimate.
	for pass := 1; pass < hotPathPasses; pass++ {
		res, err := onePass()
		if err != nil {
			return HotPathResult{}, err
		}
		if res.NsPerOp < best.NsPerOp {
			best = res
		}
	}
	return best, nil
}

// measureCollective benchmarks one GTopKAllReduce round (all ranks) on
// the named fabric under the given wire codec and returns the result
// plus per-rank wire volume. CodecV1 keeps the baseline-comparable
// configuration names.
func measureCollective(fabric string, p int, rho float64, seed uint64, tcpOpts transport.TCPOptions, codec sparse.Codec) (HotPathResult, error) {
	k := core.DensityToK(hotPathDim, rho)
	vecs := hotPathVectors(seed, p, hotPathDim, k)
	name := fmt.Sprintf("gtopk/%s/rho=%g/P=%d", fabric, rho, p)
	if codec != sparse.CodecV1 {
		name += "/wire=" + codec.String()
	}
	tcpOpts.WireVersion = codec.WireVersion()

	var fab transport.Fabric
	var err error
	if fabric == "tcp" {
		fab, err = transport.NewTCPWithOptions(p, tcpOpts)
	} else {
		fab, err = transport.NewInProcWire(p, codec.WireVersion())
	}
	if err != nil {
		return HotPathResult{}, fmt.Errorf("%s: %w", name, err)
	}
	defer fab.Close()
	comms := make([]*collective.Comm, p)
	outs := make([]sparse.Vector, p)
	for r := range comms {
		comms[r] = collective.New(fab.Conn(r))
		comms[r].SetFP16Values(codec == sparse.CodecV2F16)
	}
	chunks := core.ChunksFor(k)
	res, err := measureRounds(p, func(rank int) error {
		return core.GTopKAllReduceInto(context.Background(), comms[rank],
			vecs[rank], k, chunks, &outs[rank])
	})
	if err != nil {
		return HotPathResult{}, fmt.Errorf("%s: %w", name, err)
	}
	res.Name = name
	// The workload is deterministic per round, so the per-rank volume is
	// the exact total over warmup and every timed pass divided by the
	// round count.
	res.WireBytesPerRank = comms[0].Stats().BytesSent / int64(hotPathWarmup+hotPathPasses*hotPathRounds)
	res.Chunks = chunks
	return res, nil
}

// measureBucketed benchmarks the bucketed overlapped pipeline's
// Aggregate (serial facade; buckets still communicate concurrently).
func measureBucketed(p, buckets int, rho float64, seed uint64) (HotPathResult, error) {
	name := fmt.Sprintf("gtopk-bucketed/inproc/B=%d/P=%d", buckets, p)
	grads := make([][]float32, p)
	for r := range grads {
		src := prng.New(seed + 77*uint64(r))
		g := make([]float32, hotPathDim)
		for i := range g {
			g[i] = float32(src.NormFloat64())
		}
		grads[r] = g
	}
	bounds := make([]int, buckets+1)
	for i := 0; i <= buckets; i++ {
		bounds[i] = i * hotPathDim / buckets
	}
	fab, err := transport.NewInProc(p)
	if err != nil {
		return HotPathResult{}, fmt.Errorf("%s: %w", name, err)
	}
	defer fab.Close()
	aggs := make([]*core.BucketedAggregator, p)
	for r := range aggs {
		agg, err := core.NewBucketedAggregator(collective.New(fab.Conn(r)), bounds, rho)
		if err != nil {
			return HotPathResult{}, fmt.Errorf("%s: %w", name, err)
		}
		aggs[r] = agg
	}
	res, err := measureRounds(p, func(rank int) error {
		_, err := aggs[rank].Aggregate(context.Background(), grads[rank])
		return err
	})
	if err != nil {
		return HotPathResult{}, fmt.Errorf("%s: %w", name, err)
	}
	res.Name = name
	return res, nil
}

// measurePrimitives benchmarks the single-threaded merge primitives.
func measurePrimitives(seed uint64) []HotPathResult {
	k := core.DensityToK(hotPathDim, 0.01)
	vecs := hotPathVectors(seed+500, 2, hotPathDim, k)
	a, b := vecs[0], vecs[1]

	// Single-threaded primitives: every timed round is one fn() call, so
	// the percentile series is the per-call latency distribution. As in
	// measureRounds, hotPathPasses passes run and the lowest mean wins.
	run := func(name string, fn func()) HotPathResult {
		for i := 0; i < hotPathWarmup; i++ {
			fn()
		}
		onePass := func() HotPathResult {
			rounds := make([]time.Duration, hotPathRounds)
			var total time.Duration
			debug.FreeOSMemory()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			for i := range rounds {
				t := time.Now()
				fn()
				rounds[i] = time.Since(t)
				total += rounds[i]
			}
			runtime.ReadMemStats(&m1)
			return HotPathResult{
				Name:        name,
				NsPerOp:     int64(total) / hotPathRounds,
				BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / hotPathRounds,
				AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / hotPathRounds,
				Percentiles: percentilesOf(rounds),
			}
		}
		best := onePass()
		for pass := 1; pass < hotPathPasses; pass++ {
			if res := onePass(); res.NsPerOp < best.NsPerOp {
				best = res
			}
		}
		return best
	}

	dst, sum := &sparse.Vector{}, &sparse.Vector{}
	frame := sparse.Encode(b)
	return []HotPathResult{
		run(fmt.Sprintf("topk-select/nnz=%d/k=%d", a.NNZ()+b.NNZ(), k), func() {
			_ = sparse.AddInto(sum, a, b)
			sparse.TopKSparseInto(dst, sum, k)
		}),
		run(fmt.Sprintf("decode-view/k=%d", k), func() {
			if _, err := sparse.DecodeView(frame); err != nil {
				panic(err)
			}
		}),
		run(fmt.Sprintf("merge-round-from-wire/k=%d", k), func() {
			buf := sparse.EncodeSlices(b.Dim, b.Indices, b.Values)
			view, err := sparse.DecodeView(buf)
			if err != nil {
				panic(err)
			}
			_ = sparse.AddInto(sum, a, &view)
			sparse.TopKSparseInto(dst, sum, k)
			sparse.PutBuffer(buf)
		}),
	}
}

// HotPath runs the full harness and returns the rendered table plus the
// report. Quick mode shrinks the matrix to one configuration per fabric.
func HotPath(_ context.Context, opt Options) (string, *hotPathReport, error) {
	report := &hotPathReport{
		Schema:      hotPathSchema,
		GeneratedBy: "gtopk-bench -exp hotpath",
		Seed:        opt.seed(),
		Dim:         hotPathDim,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
	}
	report.Baseline.Commit = baselineCommit
	report.Baseline.Results = baselineHotPath
	report.Prev.Commit = prevCommit
	report.Prev.Results = prevHotPath

	workers := []int{2, 4, 8}
	densities := []float64{0.001, 0.01}
	if opt.Quick {
		workers = []int{4}
		densities = []float64{0.001}
	}
	for _, fabric := range []string{"inproc", "tcp"} {
		for _, rho := range densities {
			for _, p := range workers {
				r, err := measureCollective(fabric, p, rho, opt.seed(),
					transport.TCPOptions{DisableNoDelay: opt.TCPNagle}, opt.wire())
				if err != nil {
					return "", nil, err
				}
				report.Current.Results = append(report.Current.Results, r)
			}
		}
	}
	if !opt.Quick {
		for _, buckets := range []int{1, 4} {
			r, err := measureBucketed(4, buckets, 0.01, opt.seed())
			if err != nil {
				return "", nil, err
			}
			report.Current.Results = append(report.Current.Results, r)
		}
		report.Current.Results = append(report.Current.Results, measurePrimitives(opt.seed())...)
	}

	base := make(map[string]HotPathResult, len(baselineHotPath))
	for _, r := range baselineHotPath {
		base[r.Name] = r
	}
	prev := make(map[string]HotPathResult, len(prevHotPath))
	for _, r := range prevHotPath {
		prev[r.Name] = r
	}
	for _, r := range report.Current.Results {
		if b, ok := base[r.Name]; ok {
			report.Speedups = append(report.Speedups, HotPathSpeedup{
				Name:     r.Name,
				Baseline: b.NsPerOp,
				Current:  r.NsPerOp,
				Speedup:  float64(b.NsPerOp) / float64(r.NsPerOp),
			})
		}
		if pv, ok := prev[r.Name]; ok {
			report.VsPrev = append(report.VsPrev, HotPathSpeedup{
				Name:     r.Name,
				Baseline: pv.NsPerOp,
				Current:  r.NsPerOp,
				Speedup:  float64(pv.NsPerOp) / float64(r.NsPerOp),
			})
		}
	}

	var sb strings.Builder
	sb.WriteString("Hot path: zero-allocation gTop-k aggregation (real pipeline, seeded)\n")
	fmt.Fprintf(&sb, "dim=%d, chunks=ChunksFor(k) per config, kernels=%s, %s %s/%s, %d CPUs\nbaseline = commit %s, prev = commit %s; best of %d x %d-round timed passes per cell, nearest-rank percentiles\n\n",
		hotPathDim, sparse.Kernels(), report.GoVersion, report.GOOS, report.GOARCH, report.NumCPU,
		baselineCommit, prevCommit, hotPathPasses, hotPathRounds)
	tb := metrics.NewTable("config", "ns/op", "p50", "p99", "p999", "B/op", "allocs/op", "wire B/rank", "vs baseline", "vs prev")
	for _, r := range report.Current.Results {
		speedup, vsPrev := "", ""
		if b, ok := base[r.Name]; ok {
			speedup = fmt.Sprintf("%.2fx", float64(b.NsPerOp)/float64(r.NsPerOp))
		}
		if pv, ok := prev[r.Name]; ok {
			vsPrev = fmt.Sprintf("%.2fx", float64(pv.NsPerOp)/float64(r.NsPerOp))
		}
		wire := ""
		if r.WireBytesPerRank > 0 {
			wire = fmt.Sprint(r.WireBytesPerRank)
		}
		p50, p99, p999 := "", "", ""
		if r.Percentiles != nil {
			p50 = fmt.Sprint(r.Percentiles.P50)
			p99 = fmt.Sprint(r.Percentiles.P99)
			p999 = fmt.Sprint(r.Percentiles.P999)
		}
		tb.AddRow(r.Name, fmt.Sprint(r.NsPerOp), p50, p99, p999, fmt.Sprint(r.BytesPerOp),
			fmt.Sprint(r.AllocsPerOp), wire, speedup, vsPrev)
	}
	sb.WriteString(tb.String())
	sb.WriteString("\nOne op = one full aggregation round across all ranks (allocs summed\nover ranks); merge primitives are single-threaded. Round latencies are\ninter-completion intervals of a free-running timed phase.\n")
	return sb.String(), report, nil
}

// WriteHotPathJSON runs the harness and writes BENCH_gtopk.json (or
// opt.JSONPath). The artifact is the first point of the repo's measured
// perf trajectory; CI keeps the harness compiling via the benchmark
// smoke job.
func WriteHotPathJSON(ctx context.Context, opt Options) (string, error) {
	out, report, err := HotPath(ctx, opt)
	if err != nil {
		return "", err
	}
	path := opt.JSONPath
	if path == "" {
		path = "BENCH_gtopk.json"
	}
	// Preserve the other experiments' sections across hotpath
	// regenerations (and vice versa — the experiments share the
	// artifact).
	if prev, err := loadHotPathReport(path); err == nil {
		report.WireCodec = prev.WireCodec
		report.Hierarchy = prev.Hierarchy
		report.Compound = prev.Compound
		report.Quorum = prev.Quorum
		report.QuorumHier = prev.QuorumHier
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: write %s: %w", path, err)
	}
	return out + fmt.Sprintf("\nwrote %s (%d configurations, baseline %s)\n",
		path, len(report.Current.Results), baselineCommit), nil
}
