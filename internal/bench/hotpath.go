package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// This file is the hot-path benchmark harness: it measures the REAL
// aggregation pipeline — GTopKAllReduce over the in-process and
// TCP-loopback fabrics, the bucketed overlapped pipeline, and the merge
// primitives — with seeded, reproducible inputs, and emits the repo's
// perf-trajectory artifact BENCH_gtopk.json (ns/op, B/op, allocs/op,
// bytes on the wire, and speedups against the recorded pre-optimization
// baseline).

// hotPathDim is the dense dimension every hot-path configuration uses:
// large enough that rho=0.001 gives the paper's k=100-scale payloads,
// small enough that a full sweep runs in tens of seconds.
const hotPathDim = 100_000

// HotPathResult is one measured configuration of the aggregation
// pipeline.
type HotPathResult struct {
	// Name identifies the configuration, e.g. "gtopk/tcp/rho=0.001/P=8".
	Name string `json:"name"`
	// NsPerOp is wall time per aggregation round (all ranks completing).
	NsPerOp int64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are heap allocation totals per round
	// across all ranks.
	BytesPerOp  int64 `json:"b_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// WireBytesPerRank is the payload volume one rank sends per round
	// (zero for single-process primitives with no communicator).
	WireBytesPerRank int64 `json:"wire_bytes_per_rank,omitempty"`
	// Chunks is the per-round chunk frame count the collective ran with
	// (ChunksFor(k); zero for non-collective entries).
	Chunks int `json:"chunks,omitempty"`
}

// HotPathSpeedup pairs a configuration with its measured improvement
// over the recorded baseline.
type HotPathSpeedup struct {
	Name     string  `json:"name"`
	Baseline int64   `json:"baseline_ns_per_op"`
	Current  int64   `json:"current_ns_per_op"`
	Speedup  float64 `json:"speedup"`
}

// hotPathReport is the schema of BENCH_gtopk.json.
type hotPathReport struct {
	Schema      string `json:"schema"`
	GeneratedBy string `json:"generated_by"`
	Seed        uint64 `json:"seed"`
	Dim         int    `json:"dim"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	// Baseline holds the pre-optimization numbers (see baselineHotPath).
	Baseline struct {
		Commit  string          `json:"commit"`
		Results []HotPathResult `json:"results"`
	} `json:"baseline"`
	Current struct {
		Results []HotPathResult `json:"results"`
	} `json:"current"`
	Speedups []HotPathSpeedup `json:"speedups"`
	// WireCodec is the v2-codec + sharded-selection section maintained by
	// the wire-codec experiment; the hotpath experiment preserves it.
	WireCodec *WireCodecSection `json:"wire_codec,omitempty"`
	// Hierarchy is the flat-vs-hierarchical crossover sweep maintained
	// by the hierarchy experiment; the other experiments preserve it.
	Hierarchy *HierarchySection `json:"hierarchy,omitempty"`
	// Compound is the codec-v3 Compressor-stack + adaptive-density
	// section maintained by the compound experiment; the other
	// experiments preserve it.
	Compound *CompoundSection `json:"compound,omitempty"`
	// Quorum is the straggler-tolerant quorum sweep maintained by the
	// quorum experiment; the other experiments preserve it.
	Quorum *QuorumSection `json:"quorum,omitempty"`
}

// loadHotPathReport parses an existing BENCH_gtopk.json so one
// experiment can refresh its section without clobbering the other's.
func loadHotPathReport(path string) (*hotPathReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	report := &hotPathReport{}
	if err := json.Unmarshal(data, report); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return report, nil
}

// baselineHotPath records the pre-optimization hot path measured at
// commit 22e3930 (Decode→Add→TopKSparse per round, monolithic frames,
// unbuffered TCP writes, closure-based quickselect) with this harness's
// exact workload shape: dim=100000, seeded top-k inputs, one
// GTopKAllReduce across all ranks per op. These are the numbers the
// perf trajectory starts from; Run measures the same matrix live and
// reports speedups against them.
var baselineHotPath = []HotPathResult{
	{Name: "gtopk/inproc/rho=0.001/P=2", NsPerOp: 38334, BytesPerOp: 7015, AllocsPerOp: 30},
	{Name: "gtopk/inproc/rho=0.001/P=4", NsPerOp: 124066, BytesPerOp: 17209, AllocsPerOp: 76},
	{Name: "gtopk/inproc/rho=0.001/P=8", NsPerOp: 283980, BytesPerOp: 37605, AllocsPerOp: 168},
	{Name: "gtopk/inproc/rho=0.01/P=2", NsPerOp: 358354, BytesPerOp: 58345, AllocsPerOp: 30},
	{Name: "gtopk/inproc/rho=0.01/P=4", NsPerOp: 1048739, BytesPerOp: 141898, AllocsPerOp: 76},
	{Name: "gtopk/inproc/rho=0.01/P=8", NsPerOp: 2173380, BytesPerOp: 309000, AllocsPerOp: 168},
	{Name: "gtopk/tcp/rho=0.001/P=2", NsPerOp: 40211, BytesPerOp: 8854, AllocsPerOp: 34},
	{Name: "gtopk/tcp/rho=0.001/P=4", NsPerOp: 122840, BytesPerOp: 22741, AllocsPerOp: 88},
	{Name: "gtopk/tcp/rho=0.001/P=8", NsPerOp: 302827, BytesPerOp: 50512, AllocsPerOp: 196},
	{Name: "gtopk/tcp/rho=0.01/P=2", NsPerOp: 315296, BytesPerOp: 74784, AllocsPerOp: 34},
	{Name: "gtopk/tcp/rho=0.01/P=4", NsPerOp: 1045461, BytesPerOp: 191216, AllocsPerOp: 88},
	{Name: "gtopk/tcp/rho=0.01/P=8", NsPerOp: 2316026, BytesPerOp: 424096, AllocsPerOp: 197},
}

// baselineCommit is where baselineHotPath was measured.
const baselineCommit = "22e3930"

// hotPathVectors builds the deterministic per-rank top-k inputs.
func hotPathVectors(seed uint64, p, dim, k int) []*sparse.Vector {
	vecs := make([]*sparse.Vector, p)
	for r := 0; r < p; r++ {
		src := prng.New(seed + uint64(r)*1000)
		g := make([]float32, dim)
		for i := range g {
			g[i] = float32(src.NormFloat64())
		}
		vecs[r] = sparse.TopK(g, k)
	}
	return vecs
}

// measureCollective benchmarks one GTopKAllReduce round (all ranks) on
// the named fabric under the given wire codec and returns the result
// plus per-rank wire volume. CodecV1 keeps the baseline-comparable
// configuration names.
func measureCollective(fabric string, p int, rho float64, seed uint64, tcpOpts transport.TCPOptions, codec sparse.Codec) (HotPathResult, error) {
	k := core.DensityToK(hotPathDim, rho)
	vecs := hotPathVectors(seed, p, hotPathDim, k)
	name := fmt.Sprintf("gtopk/%s/rho=%g/P=%d", fabric, rho, p)
	if codec != sparse.CodecV1 {
		name += "/wire=" + codec.String()
	}
	tcpOpts.WireVersion = codec.WireVersion()

	var wireBytes int64
	var errMu sync.Mutex
	var benchErr error
	fail := func(err error) {
		errMu.Lock()
		if benchErr == nil {
			benchErr = err
		}
		errMu.Unlock()
	}
	res := testing.Benchmark(func(b *testing.B) {
		var fab transport.Fabric
		var err error
		if fabric == "tcp" {
			fab, err = transport.NewTCPWithOptions(p, tcpOpts)
		} else {
			fab, err = transport.NewInProcWire(p, codec.WireVersion())
		}
		if err != nil {
			fail(err)
			b.Skip(err)
			return
		}
		defer fab.Close()
		comms := make([]*collective.Comm, p)
		outs := make([]sparse.Vector, p)
		for r := range comms {
			comms[r] = collective.New(fab.Conn(r))
			comms[r].SetFP16Values(codec == sparse.CodecV2F16)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for r := range comms {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					if err := core.GTopKAllReduceInto(context.Background(), comms[rank],
						vecs[rank], k, core.ChunksFor(k), &outs[rank]); err != nil {
						fail(err)
					}
				}(r)
			}
			wg.Wait()
		}
		b.StopTimer()
		wireBytes = comms[0].Stats().BytesSent / int64(b.N)
	})
	if benchErr != nil {
		return HotPathResult{}, fmt.Errorf("%s: %w", name, benchErr)
	}
	return HotPathResult{
		Name:             name,
		NsPerOp:          res.NsPerOp(),
		BytesPerOp:       res.AllocedBytesPerOp(),
		AllocsPerOp:      res.AllocsPerOp(),
		WireBytesPerRank: wireBytes,
		Chunks:           core.ChunksFor(k),
	}, nil
}

// measureBucketed benchmarks the bucketed overlapped pipeline's
// Aggregate (serial facade; buckets still communicate concurrently).
func measureBucketed(p, buckets int, rho float64, seed uint64) (HotPathResult, error) {
	name := fmt.Sprintf("gtopk-bucketed/inproc/B=%d/P=%d", buckets, p)
	grads := make([][]float32, p)
	for r := range grads {
		src := prng.New(seed + 77*uint64(r))
		g := make([]float32, hotPathDim)
		for i := range g {
			g[i] = float32(src.NormFloat64())
		}
		grads[r] = g
	}
	bounds := make([]int, buckets+1)
	for i := 0; i <= buckets; i++ {
		bounds[i] = i * hotPathDim / buckets
	}
	var errMu sync.Mutex
	var benchErr error
	fail := func(err error) {
		errMu.Lock()
		if benchErr == nil {
			benchErr = err
		}
		errMu.Unlock()
	}
	res := testing.Benchmark(func(b *testing.B) {
		fab, err := transport.NewInProc(p)
		if err != nil {
			fail(err)
			b.Skip(err)
			return
		}
		defer fab.Close()
		aggs := make([]*core.BucketedAggregator, p)
		for r := range aggs {
			agg, err := core.NewBucketedAggregator(collective.New(fab.Conn(r)), bounds, rho)
			if err != nil {
				fail(err)
				b.Skip(err)
				return
			}
			aggs[r] = agg
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for r := range aggs {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					if _, err := aggs[rank].Aggregate(context.Background(), grads[rank]); err != nil {
						fail(err)
					}
				}(r)
			}
			wg.Wait()
		}
	})
	if benchErr != nil {
		return HotPathResult{}, fmt.Errorf("%s: %w", name, benchErr)
	}
	return HotPathResult{
		Name:        name,
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}, nil
}

// measurePrimitives benchmarks the single-threaded merge primitives.
func measurePrimitives(seed uint64) []HotPathResult {
	k := core.DensityToK(hotPathDim, 0.01)
	vecs := hotPathVectors(seed+500, 2, hotPathDim, k)
	a, b := vecs[0], vecs[1]

	run := func(name string, fn func()) HotPathResult {
		res := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			tb.ResetTimer()
			for i := 0; i < tb.N; i++ {
				fn()
			}
		})
		return HotPathResult{
			Name:        name,
			NsPerOp:     res.NsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
	}

	dst, sum := &sparse.Vector{}, &sparse.Vector{}
	frame := sparse.Encode(b)
	return []HotPathResult{
		run(fmt.Sprintf("topk-select/nnz=%d/k=%d", a.NNZ()+b.NNZ(), k), func() {
			_ = sparse.AddInto(sum, a, b)
			sparse.TopKSparseInto(dst, sum, k)
		}),
		run(fmt.Sprintf("decode-view/k=%d", k), func() {
			if _, err := sparse.DecodeView(frame); err != nil {
				panic(err)
			}
		}),
		run(fmt.Sprintf("merge-round-from-wire/k=%d", k), func() {
			buf := sparse.EncodeSlices(b.Dim, b.Indices, b.Values)
			view, err := sparse.DecodeView(buf)
			if err != nil {
				panic(err)
			}
			_ = sparse.AddInto(sum, a, &view)
			sparse.TopKSparseInto(dst, sum, k)
			sparse.PutBuffer(buf)
		}),
	}
}

// HotPath runs the full harness and returns the rendered table plus the
// report. Quick mode shrinks the matrix to one configuration per fabric.
func HotPath(_ context.Context, opt Options) (string, *hotPathReport, error) {
	report := &hotPathReport{
		Schema:      "gtopk-hotpath-bench/v1",
		GeneratedBy: "gtopk-bench -exp hotpath",
		Seed:        opt.seed(),
		Dim:         hotPathDim,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
	}
	report.Baseline.Commit = baselineCommit
	report.Baseline.Results = baselineHotPath

	workers := []int{2, 4, 8}
	densities := []float64{0.001, 0.01}
	if opt.Quick {
		workers = []int{4}
		densities = []float64{0.001}
	}
	for _, fabric := range []string{"inproc", "tcp"} {
		for _, rho := range densities {
			for _, p := range workers {
				r, err := measureCollective(fabric, p, rho, opt.seed(),
					transport.TCPOptions{DisableNoDelay: opt.TCPNagle}, opt.wire())
				if err != nil {
					return "", nil, err
				}
				report.Current.Results = append(report.Current.Results, r)
			}
		}
	}
	if !opt.Quick {
		for _, buckets := range []int{1, 4} {
			r, err := measureBucketed(4, buckets, 0.01, opt.seed())
			if err != nil {
				return "", nil, err
			}
			report.Current.Results = append(report.Current.Results, r)
		}
		report.Current.Results = append(report.Current.Results, measurePrimitives(opt.seed())...)
	}

	base := make(map[string]HotPathResult, len(baselineHotPath))
	for _, r := range baselineHotPath {
		base[r.Name] = r
	}
	for _, r := range report.Current.Results {
		if b, ok := base[r.Name]; ok {
			report.Speedups = append(report.Speedups, HotPathSpeedup{
				Name:     r.Name,
				Baseline: b.NsPerOp,
				Current:  r.NsPerOp,
				Speedup:  float64(b.NsPerOp) / float64(r.NsPerOp),
			})
		}
	}

	var sb strings.Builder
	sb.WriteString("Hot path: zero-allocation gTop-k aggregation (real pipeline, seeded)\n")
	fmt.Fprintf(&sb, "dim=%d, chunks=ChunksFor(k) per config, %s %s/%s, %d CPUs; baseline = commit %s\n\n",
		hotPathDim, report.GoVersion, report.GOOS, report.GOARCH, report.NumCPU, baselineCommit)
	tb := metrics.NewTable("config", "ns/op", "B/op", "allocs/op", "wire B/rank", "vs baseline")
	for _, r := range report.Current.Results {
		speedup := ""
		if b, ok := base[r.Name]; ok {
			speedup = fmt.Sprintf("%.2fx", float64(b.NsPerOp)/float64(r.NsPerOp))
		}
		wire := ""
		if r.WireBytesPerRank > 0 {
			wire = fmt.Sprint(r.WireBytesPerRank)
		}
		tb.AddRow(r.Name, fmt.Sprint(r.NsPerOp), fmt.Sprint(r.BytesPerOp),
			fmt.Sprint(r.AllocsPerOp), wire, speedup)
	}
	sb.WriteString(tb.String())
	sb.WriteString("\nOne op = one full aggregation round across all ranks (allocs summed\nover ranks); merge primitives are single-threaded.\n")
	return sb.String(), report, nil
}

// WriteHotPathJSON runs the harness and writes BENCH_gtopk.json (or
// opt.JSONPath). The artifact is the first point of the repo's measured
// perf trajectory; CI keeps the harness compiling via the benchmark
// smoke job.
func WriteHotPathJSON(ctx context.Context, opt Options) (string, error) {
	out, report, err := HotPath(ctx, opt)
	if err != nil {
		return "", err
	}
	path := opt.JSONPath
	if path == "" {
		path = "BENCH_gtopk.json"
	}
	// Preserve the other experiments' sections across hotpath
	// regenerations (and vice versa — the experiments share the
	// artifact).
	if prev, err := loadHotPathReport(path); err == nil {
		report.WireCodec = prev.WireCodec
		report.Hierarchy = prev.Hierarchy
		report.Compound = prev.Compound
		report.Quorum = prev.Quorum
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: write %s: %w", path, err)
	}
	return out + fmt.Sprintf("\nwrote %s (%d configurations, baseline %s)\n",
		path, len(report.Current.Results), baselineCommit), nil
}
