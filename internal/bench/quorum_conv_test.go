package bench

import (
	"context"
	"testing"
	"time"
)

// quorumConvSpec is the shared workload of the quorum convergence tests:
// small enough to run in seconds, large enough that a persistently
// refunded rank visibly matters if the conservation law were broken.
func quorumConvSpec() TrainSpec {
	return TrainSpec{
		Model: "mlp", Algo: "gtopk", Workers: 4, Batch: 8,
		Epochs: 2, ItersPerEpoch: 6,
		Density: 0.01, LR: 0.05, Momentum: 0.9, GradClip: 1, Seed: 42,
	}
}

// TestQuorumFullSyncTrainingBitIdentical pins the q=P degradation law at
// the training level: a gtopk run with Quorum=P (deadline guarding
// liveness only, nobody slow) must reproduce the flat-path loss curve
// bit for bit — every round reaches full participation and the quorum
// merge applies the exact binomial ⊕ schedule of the flat tree.
func TestQuorumFullSyncTrainingBitIdentical(t *testing.T) {
	flat, err := RunTraining(context.Background(), quorumConvSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := quorumConvSpec()
	spec.Quorum = spec.Workers
	spec.RoundTimeout = 5 * time.Second
	qp, err := RunTraining(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(qp.EpochLoss) != len(flat.EpochLoss) {
		t.Fatalf("epoch counts diverged: %d vs %d", len(qp.EpochLoss), len(flat.EpochLoss))
	}
	for e := range flat.EpochLoss {
		if qp.EpochLoss[e] != flat.EpochLoss[e] {
			t.Fatalf("epoch %d: quorum q=P loss %v != flat %v — full-sync rounds must be bit-identical",
				e+1, qp.EpochLoss[e], flat.EpochLoss[e])
		}
	}
}

// TestQuorumDegradedConvergence trains with q = P-1 while one rank's
// outgoing frames are delayed far past the round deadline — the rank
// misses every round and its selections ride the residual refund. The
// final loss must land within tolerance of the full-sync run: bounded
// staleness costs convergence speed, not convergence.
func TestQuorumDegradedConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("deadline-paced rounds take real wall time")
	}
	flat, err := RunTraining(context.Background(), quorumConvSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := quorumConvSpec()
	spec.Quorum = spec.Workers - 1
	spec.RoundTimeout = 40 * time.Millisecond
	spec.SlowRank = spec.Workers - 1
	spec.FaultDelay = 250 * time.Millisecond
	deg, err := RunTraining(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	flatFinal := flat.EpochLoss[len(flat.EpochLoss)-1]
	degFinal := deg.EpochLoss[len(deg.EpochLoss)-1]
	if degFinal >= deg.EpochLoss[0] {
		t.Fatalf("degraded run did not converge: loss %v -> %v", deg.EpochLoss[0], degFinal)
	}
	diff := degFinal - flatFinal
	if diff < 0 {
		diff = -diff
	}
	// A persistently missing rank removes a quarter of the gradient
	// signal per round; the refund keeps it in the residual, so the gap
	// to full sync stays a fraction of the loss scale, not a blow-up.
	if tol := 0.35 * flat.EpochLoss[0]; diff > tol {
		t.Fatalf("final loss %v drifted %.4f from full-sync %v (tolerance %.4f)",
			degFinal, diff, flatFinal, tol)
	}
}
