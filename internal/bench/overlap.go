package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/data"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/nn/models"
)

// This file evaluates the bucketed, overlapped aggregation pipeline
// (core.BucketedAggregator): an analytic wait-free-backpropagation
// schedule over the paper's full-size models, and a measured section that
// runs the real pipeline on an in-process cluster and reads the simulated
// clocks.

// overlapBuckets is the bucket count used by the analytic schedule; eight
// buckets is the ballpark deep-learning frameworks use for gradient
// fusion buckets.
const overlapBuckets = 8

// wfbpSchedule prices one training iteration in which buckets become
// ready tail-first during the backward pass and a single shared NIC
// serves bucket collectives in ready order. compute is split into equal
// forward/backward halves; the backward half releases buckets at evenly
// spaced points. Returns the iteration makespan.
func wfbpSchedule(compute, compress time.Duration, comms []time.Duration) time.Duration {
	n := len(comms)
	if n == 0 {
		return compute + compress
	}
	backStart := compute / 2
	backDur := compute - backStart
	perCompress := compress / time.Duration(n)
	var nicFree, finish time.Duration
	for b := 0; b < n; b++ {
		// Bucket b (tail-first) is final after (b+1)/n of the backward
		// pass, then pays its share of compression before it can ship.
		ready := backStart + backDur*time.Duration(b+1)/time.Duration(n) + perCompress
		start := ready
		if nicFree > start {
			start = nicFree
		}
		nicFree = start + comms[b]
		if nicFree > finish {
			finish = nicFree
		}
	}
	if compute+compress > finish {
		finish = compute + compress
	}
	return finish
}

// bucketComms returns the calibrated per-bucket gTopKAllReduce times for
// a model of m parameters split into n equal buckets at density rho.
func bucketComms(model netsim.Model, p, m, n int, rho float64) []time.Duration {
	out := make([]time.Duration, n)
	per := m / n
	for b := range out {
		k := core.DensityToK(per, rho)
		out[b] = calibratedComm(model, "gtopk", p, per, k)
	}
	return out
}

// BucketedOverlap reproduces the Section VII pipelining idea with the
// concrete bucketed pipeline: per paper model at P=32 it compares the
// serial gTop-k iteration, the bucketed-but-serialized variant (buckets
// one after another: pure bucketing overhead), and the overlapped
// wait-free-backpropagation schedule.
func BucketedOverlap(model netsim.Model) string {
	const p = 32
	const rho = 0.001
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: bucketed gTop-k aggregation with comm/compute overlap\n")
	fmt.Fprintf(&sb, "(P=%d, rho=%g, %d layer-aligned buckets, WFBP schedule: buckets ship\n", p, rho, overlapBuckets)
	fmt.Fprintf(&sb, "tail-first as the backward pass retires them, single shared NIC)\n\n")
	tb := metrics.NewTable("Model", "serial iter", "bucketed serial", "overlapped", "vs serial")
	for _, pm := range models.PaperModels() {
		bd := iterBreakdown(model, pm, "gtopk", p)
		serial := bd.Total()
		comms := bucketComms(model, p, pm.Params, overlapBuckets, rho)
		var sum time.Duration
		for _, c := range comms {
			sum += c
		}
		bucketedSerial := bd.Compute + bd.Compress + sum
		overlapped := wfbpSchedule(bd.Compute, bd.Compress, comms)
		tb.AddRowf(pm.Name, serial, bucketedSerial, overlapped, float64(serial)/float64(overlapped))
	}
	sb.WriteString(tb.String())
	sb.WriteString("\nBucketing alone pays one extra alpha per bucket; the overlap wins it\n")
	sb.WriteString("back by hiding communication behind the backward pass and running\n")
	sb.WriteString("bucket collectives concurrently on tag-isolated sub-communicators.\n")
	return sb.String()
}

// MeasuredOverlap runs the REAL bucketed pipeline on an in-process
// cluster (P=4, MLP) next to the single-bucket gTop-k aggregator and
// reports the simulated communication clocks: the bucketed aggregator
// advances its rank's clock by the slowest bucket per iteration
// (concurrent sub-communicators), the serialized baseline by the full
// collective.
func MeasuredOverlap(ctx context.Context, opt Options) (string, error) {
	const (
		workers = 4
		batch   = 8
		density = 0.01
	)
	steps := 12
	if opt.Quick {
		steps = 4
	}
	ds, err := data.NewImages(opt.seed()+2000, 10, 3, 8, 8, 0.4)
	if err != nil {
		return "", err
	}
	simModel := netsim.Paper1GbE()

	type runResult struct {
		simPerIter  time.Duration
		bytesSent   int64
		buckets     int
		bucketTimes []time.Duration
		finalLoss   float64
	}
	run := func(bucketed bool) (*runResult, error) {
		var rank0Agg *core.BucketedAggregator
		results, err := core.RunCluster(ctx, core.ClusterConfig{
			Workers: workers, Steps: steps, Model: &simModel,
		}, func(rank int, comm *collective.Comm) (*core.Trainer, error) {
			cls := models.MLP(ds.Dim(), 64, 10)
			cls.Net.Init(opt.seed())
			dim := cls.Net.ParamCount()
			var agg core.Aggregator
			if bucketed {
				bounds := core.GroupBounds(cls.Net.LayerBounds(), 4)
				ba, err := core.NewBucketedAggregator(comm, bounds, density)
				if err != nil {
					return nil, err
				}
				if rank == 0 {
					rank0Agg = ba
				}
				agg = ba
			} else {
				k := core.DensityToK(dim, density)
				ga, err := core.NewGTopKAggregator(comm, dim, k)
				if err != nil {
					return nil, err
				}
				agg = ga
			}
			tr, err := core.NewTrainer(core.TrainConfig{LR: 0.05},
				agg, cls.Net.Parameters(), models.GradFn(cls, ds, rank, workers, batch))
			if err != nil {
				return nil, err
			}
			if bucketed {
				if err := tr.SetStreamGradFn(models.StreamGradFn(cls, ds, rank, workers, batch)); err != nil {
					return nil, err
				}
			}
			return tr, nil
		})
		if err != nil {
			return nil, err
		}
		rr := &runResult{
			simPerIter: results[0].SimulatedTime / time.Duration(steps),
			bytesSent:  results[0].CommStats.BytesSent,
			finalLoss:  results[0].Losses[len(results[0].Losses)-1],
		}
		if rank0Agg != nil {
			rr.buckets = rank0Agg.NumBuckets()
			rr.bucketTimes = rank0Agg.LastBucketTimes()
		}
		return rr, nil
	}

	baseline, err := run(false)
	if err != nil {
		return "", err
	}
	bucketed, err := run(true)
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Measured: real bucketed pipeline vs serialized gTop-k (MLP, P=%d, rho=%g)\n\n", workers, density)
	tb := metrics.NewTable("aggregation", "sim comm/iter", "sent KiB/worker", "final loss")
	tb.AddRow("gtopk (serialized)", fmt.Sprint(baseline.simPerIter),
		fmt.Sprintf("%.1f", float64(baseline.bytesSent)/1024), fmt.Sprintf("%.4f", baseline.finalLoss))
	tb.AddRow(fmt.Sprintf("gtopk-bucketed (%d buckets, overlapped)", bucketed.buckets),
		fmt.Sprint(bucketed.simPerIter),
		fmt.Sprintf("%.1f", float64(bucketed.bytesSent)/1024), fmt.Sprintf("%.4f", bucketed.finalLoss))
	sb.WriteString(tb.String())

	var sum, slowest time.Duration
	for _, d := range bucketed.bucketTimes {
		sum += d
		if d > slowest {
			slowest = d
		}
	}
	fmt.Fprintf(&sb, "\nLast iteration per-bucket comm: %v\n", bucketed.bucketTimes)
	fmt.Fprintf(&sb, "overlapped (slowest bucket): %v   serialized (sum of buckets): %v   speedup: %.2fx\n",
		slowest, sum, float64(sum)/float64(slowest))
	if slowest >= sum && len(bucketed.bucketTimes) > 1 {
		sb.WriteString("WARNING: overlap did not beat serialized bucket execution\n")
	}
	return sb.String(), nil
}

// bucketedConvergence compares single-bucket gTop-k with the bucketed
// pipeline end to end in training: per-bucket selection changes WHICH
// gradients ship (like layer-wise sparsification), so the loss curves —
// not bitwise equality — are the relevant check at this level.
func bucketedConvergence(ctx context.Context, opt Options) (string, error) {
	epochs, iters := opt.scale(12, 16)
	base := TrainSpec{
		Model: "vgg16sim", Workers: 4, Batch: 16,
		Epochs: epochs, ItersPerEpoch: iters,
		Density: 0.001, LR: 0.05, Momentum: 0.9, GradClip: 1, Seed: opt.seed(),
	}
	curves, err := runAlgos(ctx, base, "gtopk", "gtopk-bucketed")
	if err != nil {
		return "", err
	}
	return CurveTable("Extension: bucketed overlapped gTop-k convergence (VGG-16-sim, P=4)", curves), nil
}
