package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// This file is the hierarchy experiment: it runs the REAL flat and
// two-level hierarchical gTop-k collectives on an in-process fabric
// across P ∈ {16..256} × G ∈ {4,8,16} × ρ ∈ {0.001, 0.01}, charges both
// with the paper's 1 GbE α-β constants plus a shared synchronization-
// skew factor (netsim.Model.SyncGamma — world-sized rounds pay for
// world-sized straggler ensembles), verifies replica agreement on every
// configuration, and records the flat-vs-hierarchical crossover into
// the `hierarchy` section of BENCH_gtopk.json.

// hierarchyDim is the dense dimension of the hierarchy sweep: ρ=0.001
// gives the paper-scale k≈1049 payloads at 2^20 parameters.
const hierarchyDim = 1 << 20

// hierarchyQuickDim shrinks the smoke-test profile.
const hierarchyQuickDim = 1 << 16

// HierarchyResult is one (P, G, ρ) cell of the sweep. Times are
// simulated microseconds — the maximum over ranks of the α-β clock, the
// job's critical path.
type HierarchyResult struct {
	P   int     `json:"p"`
	G   int     `json:"g"`
	Rho float64 `json:"rho"`
	K   int     `json:"k"`
	// FlatUS/HierUS are measured on the real collectives (in-process
	// fabric, simulated clock); ModelFlatUS/ModelHierUS are the
	// closed-form netsim predictions for the same configuration.
	FlatUS      int64   `json:"flat_us"`
	HierUS      int64   `json:"hier_us"`
	ModelFlatUS int64   `json:"model_flat_us"`
	ModelHierUS int64   `json:"model_hier_us"`
	Speedup     float64 `json:"speedup"` // flat / hierarchical (>1: hierarchy wins)
}

// HierarchyCrossover records, per (G, ρ), the smallest swept P at which
// the hierarchical collective beats the flat tree (0 when it never
// does within the sweep).
type HierarchyCrossover struct {
	G      int     `json:"g"`
	Rho    float64 `json:"rho"`
	CrossP int     `json:"cross_p"`
}

// HierarchySection is the hierarchy section of BENCH_gtopk.json.
type HierarchySection struct {
	Dim        int                  `json:"dim"`
	AlphaUS    float64              `json:"alpha_us"`
	BetaNS     float64              `json:"beta_ns"`
	SyncGamma  float64              `json:"sync_gamma"`
	Sweep      []HierarchyResult    `json:"sweep"`
	Crossovers []HierarchyCrossover `json:"crossovers"`
}

// hierarchyVectors builds deterministic per-rank top-k inputs for both
// sweep densities without ever holding more than one dense gradient.
func hierarchyVectors(seed uint64, p, dim int, ks []int) [][]*sparse.Vector {
	vecs := make([][]*sparse.Vector, len(ks))
	for i := range vecs {
		vecs[i] = make([]*sparse.Vector, p)
	}
	g := make([]float32, dim)
	for r := 0; r < p; r++ {
		src := prng.New(seed + uint64(r)*1000)
		for i := range g {
			g[i] = float32(src.NormFloat64())
		}
		for i, k := range ks {
			vecs[i][r] = sparse.TopK(g, k)
		}
	}
	return vecs
}

// runHierarchyConfig executes one configuration (flat when g <= 1) on a
// fresh in-process fabric, checks replica agreement, and returns the
// maximum simulated time across ranks.
func runHierarchyConfig(model netsim.Model, vecs []*sparse.Vector, k, g int) (time.Duration, error) {
	p := len(vecs)
	fab, err := transport.NewInProc(p)
	if err != nil {
		return 0, err
	}
	defer fab.Close()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		slowest time.Duration
		results = make([]*sparse.Vector, p)
		errs    = make([]error, p)
	)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var clock netsim.Clock
			comm := collective.New(fab.Conn(rank)).WithClock(&clock, model)
			var res *sparse.Vector
			var err error
			if g <= 1 {
				res, err = core.GTopKAllReduce(context.Background(), comm, vecs[rank].Clone(), k)
			} else {
				res, err = core.HierarchicalGTopKAllReduce(context.Background(), comm, vecs[rank].Clone(), k, g)
			}
			if err != nil {
				errs[rank] = err
				return
			}
			results[rank] = res
			mu.Lock()
			if clock.Now() > slowest {
				slowest = clock.Now()
			}
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("rank %d: %w", rank, err)
		}
	}
	for r := 1; r < p; r++ {
		if !vectorsEqualBits(results[0], results[r]) {
			return 0, fmt.Errorf("replicas diverged: rank %d != rank 0 (P=%d, G=%d)", r, p, g)
		}
	}
	return slowest, nil
}

// vectorsEqualBits compares two sparse vectors bit for bit.
func vectorsEqualBits(a, b *sparse.Vector) bool {
	if a.Dim != b.Dim || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] || math.Float32bits(a.Values[i]) != math.Float32bits(b.Values[i]) {
			return false
		}
	}
	return true
}

// Hierarchy runs the sweep and returns the rendered table plus the
// section. Quick mode shrinks to two worker counts, one group size and
// one density.
func Hierarchy(_ context.Context, opt Options) (string, *HierarchySection, error) {
	dim := hierarchyDim
	workers := []int{16, 32, 64, 128, 256}
	groups := []int{4, 8, 16}
	densities := []float64{0.001, 0.01}
	if opt.Quick {
		dim = hierarchyQuickDim
		workers = []int{16, 64}
		groups = []int{4}
		densities = []float64{0.001}
	}
	if opt.HierGroup > 1 {
		groups = []int{opt.HierGroup}
	}
	model := netsim.Paper1GbE().WithSyncSkew(netsim.DefaultSyncGamma)

	section := &HierarchySection{
		Dim:       dim,
		AlphaUS:   float64(model.Alpha) / float64(time.Microsecond),
		BetaNS:    float64(model.Beta) / float64(time.Nanosecond),
		SyncGamma: model.SyncGamma,
	}

	ks := make([]int, len(densities))
	for i, rho := range densities {
		ks[i] = core.DensityToK(dim, rho)
	}

	for _, p := range workers {
		vecs := hierarchyVectors(opt.seed(), p, dim, ks)
		for di, rho := range densities {
			k := ks[di]
			flat, err := runHierarchyConfig(model, vecs[di], k, 1)
			if err != nil {
				return "", nil, fmt.Errorf("flat P=%d rho=%g: %w", p, rho, err)
			}
			for _, g := range groups {
				if g >= p {
					continue
				}
				hier, err := runHierarchyConfig(model, vecs[di], k, g)
				if err != nil {
					return "", nil, fmt.Errorf("hier P=%d G=%d rho=%g: %w", p, g, rho, err)
				}
				section.Sweep = append(section.Sweep, HierarchyResult{
					P: p, G: g, Rho: rho, K: k,
					FlatUS:      flat.Microseconds(),
					HierUS:      hier.Microseconds(),
					ModelFlatUS: model.GTopKTree(p, k).Microseconds(),
					ModelHierUS: model.HierGTopK(p, g, k).Microseconds(),
					Speedup:     float64(flat) / float64(hier),
				})
			}
		}
	}

	// Crossovers: smallest swept P where the hierarchy wins, per (G, ρ).
	for _, g := range groups {
		for _, rho := range densities {
			cross := 0
			for _, r := range section.Sweep {
				if r.G == g && r.Rho == rho && r.HierUS < r.FlatUS {
					cross = r.P
					break
				}
			}
			section.Crossovers = append(section.Crossovers, HierarchyCrossover{G: g, Rho: rho, CrossP: cross})
		}
	}

	var sb strings.Builder
	sb.WriteString("Hierarchy: two-level gTop-k vs flat tree (real collectives, simulated 1GbE)\n")
	fmt.Fprintf(&sb, "dim=%d, alpha=%.0fus, beta=%.1fns/elem, sync skew gamma=%.2f; times are the\nslowest rank's simulated clock (replica agreement verified per cell)\n\n",
		section.Dim, section.AlphaUS, section.BetaNS, section.SyncGamma)
	tb := metrics.NewTable("P", "G", "rho", "k", "flat", "hier", "speedup", "model flat", "model hier")
	for _, r := range section.Sweep {
		tb.AddRow(fmt.Sprint(r.P), fmt.Sprint(r.G), fmt.Sprintf("%g", r.Rho), fmt.Sprint(r.K),
			fmt.Sprintf("%.2fms", float64(r.FlatUS)/1000), fmt.Sprintf("%.2fms", float64(r.HierUS)/1000),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.2fms", float64(r.ModelFlatUS)/1000), fmt.Sprintf("%.2fms", float64(r.ModelHierUS)/1000))
	}
	sb.WriteString(tb.String())
	sb.WriteString("\nCrossover (smallest P where the hierarchy wins):\n")
	for _, c := range section.Crossovers {
		if c.CrossP == 0 {
			fmt.Fprintf(&sb, "  G=%-3d rho=%-6g none (flat wins across the sweep)\n", c.G, c.Rho)
		} else {
			fmt.Fprintf(&sb, "  G=%-3d rho=%-6g P>=%d\n", c.G, c.Rho, c.CrossP)
		}
	}
	sb.WriteString("\nThe hierarchy pays ceil(log2 G) extra broadcast rounds (every member holds\nits group aggregate — the leader-failure story) and buys group-sized\nsynchronization domains; it wins where alpha-skew dominates (low rho,\nlarge P) and loses where the extra payload volume does (rho=0.01).\n")
	return sb.String(), section, nil
}

// WriteHierarchyJSON runs the sweep and folds the hierarchy section into
// BENCH_gtopk.json (or opt.JSONPath), preserving the other experiments'
// sections.
func WriteHierarchyJSON(ctx context.Context, opt Options) (string, error) {
	out, section, err := Hierarchy(ctx, opt)
	if err != nil {
		return "", err
	}
	path := opt.JSONPath
	if path == "" {
		path = "BENCH_gtopk.json"
	}
	report, err := loadHotPathReport(path)
	if err != nil {
		// No (or unreadable) artifact: start a minimal report carrying
		// just this section plus the environment stamp.
		report = &hotPathReport{
			Schema:      hotPathSchema,
			GeneratedBy: "gtopk-bench -exp hierarchy",
			Seed:        opt.seed(),
			Dim:         hotPathDim,
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
		}
		report.Baseline.Commit = baselineCommit
		report.Baseline.Results = baselineHotPath
		report.Prev.Commit = prevCommit
		report.Prev.Results = prevHotPath
	}
	report.Hierarchy = section
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: write %s: %w", path, err)
	}
	return out + fmt.Sprintf("\nwrote %s (%d sweep cells)\n", path, len(section.Sweep)), nil
}
