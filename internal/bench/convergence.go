package bench

import (
	"context"
	"fmt"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/data"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/nn"
	"gtopkssgd/internal/nn/models"
	"gtopkssgd/internal/quant"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// TrainSpec configures one distributed-training run of a convergence
// experiment. Worker counts, densities, warmup schedules and momentum
// follow the paper; model sizes and epoch lengths are CPU-scaled (see
// EXPERIMENTS.md §Scaling).
type TrainSpec struct {
	Model string // vgg16sim | resnet20sim | alexnetsim | resnet50sim | lstm | mlp
	Algo  string // dense | topk | gtopk | gtopk-naive | gtopk-ps | gtopk-layerwise | gtopk-bucketed

	Workers       int
	Batch         int
	Epochs        int
	ItersPerEpoch int

	Density float64
	// WarmupDensities are per-epoch densities applied before Density
	// takes over (the paper uses [0.25, 0.0725, 0.015, 0.004]).
	WarmupDensities []float64

	LR       float32
	Momentum float32
	GradClip float32

	Seed uint64
	// EvalBatches > 0 evaluates held-out accuracy after every epoch
	// (classifier models only).
	EvalBatches int
	// DisablePutBack turns off Algorithm 4 line 10 for the residual
	// ablation (gtopk only).
	DisablePutBack bool
	// HierGroup is the group size of the gtopk-hier algorithm (0 picks
	// the default of 4; ignored by every other algorithm).
	HierGroup int
	// Wire, when non-zero, selects the sparse wire codec the simulated
	// cluster's fabric negotiates (e.g. sparse.CodecV3Q8 trains through
	// the compound quantized pipeline, its error folded into the
	// residual). Zero keeps the v1 default.
	Wire sparse.Codec
	// Quorum, when > 0, runs the gtopk algorithm in straggler-tolerant
	// quorum mode: each round closes after Quorum of Workers
	// contributions under the RoundTimeout deadline, and a straggler's
	// block is refunded to its residual. Under gtopk-hier, Quorum is the
	// intra-group quorum q_g over each group of HierGroup members and
	// LeaderQuorum the leader-level quorum q_l over the group aggregates
	// (0 waits for every group); the RoundTimeout budget splits across
	// the levels per core.QuorumConfig.SplitLevels.
	Quorum       int
	LeaderQuorum int
	RoundTimeout time.Duration
	// FaultDelay, when > 0, wraps the cluster's fabric in a seeded
	// FaultInjector that delays SlowRank's outgoing frames by FaultDelay
	// — the straggler the quorum rides out.
	FaultDelay time.Duration
	SlowRank   int
}

// Validate rejects malformed specifications.
func (s TrainSpec) Validate() error {
	if s.Workers < 1 || s.Batch < 1 || s.Epochs < 1 || s.ItersPerEpoch < 1 {
		return fmt.Errorf("bench: non-positive workers/batch/epochs/iters in %+v", s)
	}
	if s.Algo != "dense" && (s.Density <= 0 || s.Density > 1) {
		return fmt.Errorf("bench: density %v out of (0,1]", s.Density)
	}
	return nil
}

// TrainCurve is the result of one training run.
type TrainCurve struct {
	Spec      TrainSpec
	EpochLoss []float64
	EpochAcc  []float64     // per-epoch held-out accuracy (empty unless requested)
	SimTime   time.Duration // simulated communication time on rank 0
}

// PaperWarmup returns the paper's warmup density schedule.
func PaperWarmup() []float64 { return []float64{0.25, 0.0725, 0.015, 0.004} }

// Models lists the model names RunTraining accepts — the authoritative
// registry CLI validation must consult (the switch in RunTraining is
// its implementation).
func Models() []string {
	return []string{"vgg16sim", "resnet20sim", "alexnetsim", "resnet50sim", "lstm", "mlp"}
}

// Algos lists the algorithm names buildAggregator accepts — the
// authoritative registry CLI validation must consult.
func Algos() []string {
	return []string{"dense", "topk", "gtopk", "gtopk-hier", "gtopk-naive", "gtopk-ps",
		"gtopk-layerwise", "gtopk-bucketed", "signsgd", "terngrad", "gtopk-quant8"}
}

// RunTraining executes the distributed training run described by spec and
// returns its loss (and optionally accuracy) curves.
func RunTraining(ctx context.Context, spec TrainSpec) (*TrainCurve, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	steps := spec.Epochs * spec.ItersPerEpoch
	simModel := netsim.Paper1GbE()

	// Rank 0's model is shared with the evaluation hook. Classifier
	// construction must happen inside the worker goroutine for all other
	// ranks, so the setup closure builds per-rank state.
	type rankState struct {
		cls  *models.Classifier
		lstm *nn.LSTMLM
	}
	states := make([]*rankState, spec.Workers)

	var imgDS *data.Images
	var txtDS *data.Text
	var err error
	if spec.Model == "lstm" {
		txtDS, err = data.NewText(spec.Seed+1000, 64)
	} else {
		c, h, w := 3, 8, 8
		if spec.Model == "alexnetsim" {
			h, w = 16, 16
		}
		imgDS, err = data.NewImages(spec.Seed+1000, 10, c, h, w, 0.4)
	}
	if err != nil {
		return nil, err
	}

	setup := func(rank int, comm *collective.Comm) (*core.Trainer, error) {
		st := &rankState{}
		states[rank] = st
		var (
			dim    int
			params []float32
			gradFn core.GradFn
			bounds []int
		)
		switch spec.Model {
		case "vgg16sim":
			st.cls = models.VGG16Sim()
		case "resnet20sim":
			st.cls = models.ResNet20Sim()
		case "alexnetsim":
			st.cls = models.AlexNetSim()
		case "resnet50sim":
			st.cls = models.ResNet50Sim()
		case "mlp":
			st.cls = models.MLP(imgDS.Dim(), 64, 10)
		case "lstm":
			st.lstm = models.LSTMPTBSim()
		default:
			return nil, fmt.Errorf("bench: unknown model %q", spec.Model)
		}
		if st.lstm != nil {
			st.lstm.Init(spec.Seed)
			dim = st.lstm.ParamCount()
			params = st.lstm.Parameters()
			gradFn = models.LSTMGradFn(st.lstm, txtDS, rank, spec.Workers, spec.Batch, 16)
			bounds = []int{0, dim}
		} else {
			st.cls.Net.Init(spec.Seed)
			dim = st.cls.Net.ParamCount()
			params = st.cls.Net.Parameters()
			gradFn = models.GradFn(st.cls, imgDS, rank, spec.Workers, spec.Batch)
			bounds = st.cls.Net.LayerBounds()
		}

		agg, err := buildAggregator(spec, comm, dim, bounds)
		if err != nil {
			return nil, err
		}
		cfg := core.TrainConfig{LR: spec.LR, Momentum: spec.Momentum, GradClip: spec.GradClip}
		// Sparsified algorithms use DGC-style momentum correction (local
		// momentum before selection) instead of global momentum on the
		// spiky sparse updates, which is unstable — the problem the
		// paper's reference [12] identifies and fixes.
		type momentumCorrector interface{ SetMomentumCorrection(mu float32) }
		if mc, ok := agg.(momentumCorrector); ok && spec.Momentum > 0 {
			mc.SetMomentumCorrection(spec.Momentum)
			cfg.Momentum = 0
		}
		return core.NewTrainer(cfg, agg, params, gradFn)
	}

	cfg := core.ClusterConfig{
		Workers: spec.Workers,
		Steps:   steps,
		Model:   &simModel,
	}
	if spec.Wire != 0 || spec.FaultDelay > 0 {
		wire := spec.Wire
		if wire == 0 {
			wire = sparse.CodecV1
		}
		var fab transport.Fabric
		fab, err := transport.NewInProcWire(spec.Workers, wire.WireVersion())
		if err != nil {
			return nil, err
		}
		if spec.FaultDelay > 0 {
			fab = transport.NewFaultInjector(fab, transport.FaultPlan{
				Seed:      spec.Seed,
				Delay:     spec.FaultDelay,
				SlowRanks: []int{spec.SlowRank},
			})
		}
		defer fab.Close() //nolint:errcheck // in-process close never fails
		cfg.Fabric = fab
	}
	results, err := core.RunCluster(ctx, cfg, setup)
	if err != nil {
		return nil, err
	}

	curve := &TrainCurve{
		Spec:      spec,
		EpochLoss: metrics.EpochMeans(results[0].Losses, spec.ItersPerEpoch),
		SimTime:   results[0].SimulatedTime,
	}
	if spec.EvalBatches > 0 && states[0] != nil && states[0].cls != nil {
		// Final-model accuracy (per-epoch accuracy would require eval
		// hooks inside the training loop; the final number is what
		// Figs 13/14 compare at the end of training).
		curve.EpochAcc = []float64{
			models.EvalAccuracy(states[0].cls, imgDS, spec.EvalBatches, 32),
		}
	}
	return curve, nil
}

// buildAggregator constructs the aggregator named by spec.Algo with the
// warmup schedule installed where supported.
func buildAggregator(spec TrainSpec, comm *collective.Comm, dim int, bounds []int) (core.Aggregator, error) {
	if spec.Wire != 0 {
		comm.SetFP16Values(spec.Wire == sparse.CodecV2F16 || spec.Wire == sparse.CodecV3F16)
		if spec.Wire.Value().Quantized() {
			comm.SetCompressor(quant.NewStack(spec.Wire.Value(), spec.Seed).Fork(uint64(comm.Rank())))
		}
	}
	k := core.DensityToK(dim, spec.Density)
	schedule := densitySchedule(spec, dim)
	switch spec.Algo {
	case "dense":
		return core.NewDenseAggregator(comm, dim), nil
	case "topk":
		agg, err := core.NewTopKAggregator(comm, dim, k)
		if err != nil {
			return nil, err
		}
		if schedule != nil {
			agg.SetSchedule(schedule)
		}
		return agg, nil
	case "gtopk":
		agg, err := core.NewGTopKAggregator(comm, dim, k)
		if err != nil {
			return nil, err
		}
		if schedule != nil {
			agg.SetSchedule(schedule)
		}
		if spec.DisablePutBack {
			agg.SetPutBack(false)
		}
		if spec.Quorum > 0 {
			if err := agg.SetQuorum(core.QuorumConfig{Q: spec.Quorum, Timeout: spec.RoundTimeout}); err != nil {
				return nil, err
			}
		}
		return agg, nil
	case "gtopk-hier":
		group := spec.HierGroup
		if group == 0 {
			group = 4
		}
		agg, err := core.NewHierarchicalAggregator(comm, dim, k, group)
		if err != nil {
			return nil, err
		}
		if schedule != nil {
			agg.SetSchedule(schedule)
		}
		if spec.DisablePutBack {
			agg.SetPutBack(false)
		}
		if spec.Quorum > 0 {
			if err := agg.SetQuorum(core.QuorumConfig{Q: spec.Quorum, LeaderQ: spec.LeaderQuorum, Timeout: spec.RoundTimeout}); err != nil {
				return nil, err
			}
		}
		return agg, nil
	case "gtopk-naive":
		return core.NewNaiveGTopKAggregator(comm, dim, k)
	case "gtopk-ps":
		return core.NewPSGTopKAggregator(comm, dim, k)
	case "gtopk-layerwise":
		return core.NewLayerwiseGTopKAggregator(comm, bounds, spec.Density)
	case "gtopk-bucketed":
		return core.NewBucketedAggregator(comm, core.GroupBounds(bounds, 4), spec.Density)
	case "signsgd":
		return quant.NewSignSGDAggregator(comm, dim), nil
	case "terngrad":
		return quant.NewTernGradAggregator(comm, dim, spec.Seed), nil
	case "gtopk-quant8":
		return quant.NewQuantizedGTopKAggregator(comm, dim, k, spec.Seed)
	default:
		return nil, fmt.Errorf("bench: unknown algorithm %q", spec.Algo)
	}
}

// densitySchedule converts the warmup densities into a per-step k
// schedule (nil when no warmup is configured).
func densitySchedule(spec TrainSpec, dim int) func(step int) int {
	if len(spec.WarmupDensities) == 0 {
		return nil
	}
	warm := append([]float64(nil), spec.WarmupDensities...)
	target := spec.Density
	iters := spec.ItersPerEpoch
	return func(step int) int {
		epoch := step / iters
		if epoch < len(warm) {
			return core.DensityToK(dim, warm[epoch])
		}
		return core.DensityToK(dim, target)
	}
}

// CurveTable renders several training curves side by side, one row per
// epoch — the textual equivalent of the paper's loss-vs-epoch plots.
func CurveTable(title string, curves []*TrainCurve) string {
	header := []string{"epoch"}
	for _, c := range curves {
		header = append(header, c.Spec.Algo)
	}
	tb := metrics.NewTable(header...)
	maxEpochs := 0
	for _, c := range curves {
		if len(c.EpochLoss) > maxEpochs {
			maxEpochs = len(c.EpochLoss)
		}
	}
	for e := 0; e < maxEpochs; e++ {
		row := []string{fmt.Sprintf("%d", e+1)}
		for _, c := range curves {
			if e < len(c.EpochLoss) {
				row = append(row, fmt.Sprintf("%.4f", c.EpochLoss[e]))
			} else {
				row = append(row, "")
			}
		}
		tb.AddRow(row...)
	}
	return title + "\n\n" + tb.String()
}
