package bench

import (
	"path/filepath"
	"testing"

	"gtopkssgd/internal/core"
)

// benchArtifactPath locates the checked-in BENCH_gtopk.json at the repo
// root (this package lives at internal/bench).
func benchArtifactPath() string {
	return filepath.Join("..", "..", "BENCH_gtopk.json")
}

// TestBenchArtifactSchema is the regeneration guard: the committed
// BENCH_gtopk.json is rewritten by three different experiments (hotpath,
// wire-codec, hierarchy), each of which must preserve the others'
// sections — this test fails the build if any known section has been
// silently dropped or emptied by a regeneration.
func TestBenchArtifactSchema(t *testing.T) {
	report, err := loadHotPathReport(benchArtifactPath())
	if err != nil {
		t.Fatalf("checked-in artifact unreadable: %v", err)
	}
	if report.Schema != hotPathSchema {
		t.Fatalf("schema %q, want %q", report.Schema, hotPathSchema)
	}
	if report.Dim <= 0 || report.Seed == 0 || report.GoVersion == "" {
		t.Fatalf("environment stamp incomplete: dim=%d seed=%d go=%q", report.Dim, report.Seed, report.GoVersion)
	}

	// hotpath section: recorded baseline and previous-PR reference plus
	// live measurements with speedups against both.
	if report.Baseline.Commit == "" || len(report.Baseline.Results) == 0 {
		t.Fatal("hotpath baseline section missing or empty")
	}
	if report.Prev.Commit == "" || len(report.Prev.Results) == 0 {
		t.Fatal("hotpath prev section missing or empty")
	}
	if len(report.Current.Results) == 0 {
		t.Fatal("hotpath current section empty")
	}
	if len(report.Speedups) == 0 {
		t.Fatal("hotpath speedups section empty")
	}
	for _, r := range append(append([]HotPathResult(nil), report.Baseline.Results...), report.Prev.Results...) {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Fatalf("malformed hotpath result %+v", r)
		}
	}
	// Every live row must carry the tail-latency summary: enough timed
	// rounds for a meaningful p999 and monotone order statistics.
	for _, r := range report.Current.Results {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Fatalf("malformed hotpath result %+v", r)
		}
		pct := r.Percentiles
		if pct == nil {
			t.Fatalf("current row %q lacks percentiles", r.Name)
		}
		if pct.Rounds < 200 {
			t.Fatalf("current row %q measured only %d rounds, want >= 200", r.Name, pct.Rounds)
		}
		if pct.P50 <= 0 || pct.P50 > pct.P99 || pct.P99 > pct.P999 {
			t.Fatalf("current row %q percentiles not monotone: p50=%d p99=%d p999=%d",
				r.Name, pct.P50, pct.P99, pct.P999)
		}
	}
	// The fast-kernel + vectored-I/O acceptance bar: both P=8 paper-scale
	// aggregation rows where the kernels and vectored sends actually bite
	// must show >= 2x over the previous PR's numbers. The inproc rho=0.001
	// row is the pure-compute cell; the tcp rho=0.01 row is the multi-chunk
	// cell (k=1000 -> 3 chunks per message) that exercises kernels and
	// vectored I/O together. (tcp rho=0.001 is excluded by design: at ~100us
	// per round it is syscall-floor-bound — 14 messages x write+read+wake —
	// not kernel- or batching-bound, so 2x is not reachable there on this
	// transport.)
	vsPrev := map[string]float64{}
	for _, s := range report.VsPrev {
		if s.Baseline <= 0 || s.Current <= 0 || s.Speedup <= 0 {
			t.Fatalf("malformed vs_prev row %+v", s)
		}
		vsPrev[s.Name] = s.Speedup
	}
	for _, name := range []string{"gtopk/inproc/rho=0.001/P=8", "gtopk/tcp/rho=0.01/P=8"} {
		got, ok := vsPrev[name]
		if !ok {
			t.Fatalf("vs_prev lacks the %q acceptance row", name)
		}
		if got < 2.0 {
			t.Fatalf("vs_prev[%q] = %.2fx, want >= 2x over commit %s", name, got, report.Prev.Commit)
		}
	}

	// wire_codec section: the codec sweep and the sharded-selection
	// scaling rows.
	wc := report.WireCodec
	if wc == nil {
		t.Fatal("wire_codec section missing (a regeneration dropped it)")
	}
	if wc.Dim <= 0 || len(wc.Codec) == 0 || len(wc.Selection) == 0 {
		t.Fatalf("wire_codec section malformed: dim=%d codec=%d selection=%d", wc.Dim, len(wc.Codec), len(wc.Selection))
	}
	for _, c := range wc.Codec {
		if c.Name == "" || c.Codec == "" || c.WireBytesPerRank <= 0 || c.BytesReduction <= 0 {
			t.Fatalf("malformed wire_codec row %+v", c)
		}
	}

	// hierarchy section: the flat-vs-hierarchical sweep with per-(G,rho)
	// crossovers.
	h := report.Hierarchy
	if h == nil {
		t.Fatal("hierarchy section missing (a regeneration dropped it)")
	}
	if h.Dim <= 0 || h.AlphaUS <= 0 || h.BetaNS <= 0 || h.SyncGamma <= 0 {
		t.Fatalf("hierarchy model stamp malformed: %+v", h)
	}
	if len(h.Sweep) == 0 || len(h.Crossovers) == 0 {
		t.Fatalf("hierarchy sweep/crossovers empty: %d/%d", len(h.Sweep), len(h.Crossovers))
	}
	seen := map[[2]interface{}]bool{}
	for _, r := range h.Sweep {
		if r.P < 2 || r.G < 2 || r.G >= r.P || r.K < 1 {
			t.Fatalf("malformed hierarchy cell %+v", r)
		}
		if r.FlatUS <= 0 || r.HierUS <= 0 || r.ModelFlatUS <= 0 || r.ModelHierUS <= 0 || r.Speedup <= 0 {
			t.Fatalf("hierarchy cell with non-positive timings %+v", r)
		}
		seen[[2]interface{}{r.G, r.Rho}] = true
	}
	crossAt64 := false
	for _, c := range h.Crossovers {
		if !seen[[2]interface{}{c.G, c.Rho}] {
			t.Fatalf("crossover for unswept configuration %+v", c)
		}
		if c.CrossP != 0 && c.CrossP < 64 {
			t.Fatalf("crossover %+v below P=64 — the hierarchy should not win small worlds under the committed constants", c)
		}
		if c.CrossP == 64 {
			crossAt64 = true
		}
	}
	if !crossAt64 {
		t.Fatal("no (G, rho) crossover at P=64 recorded — the committed sweep must show the P>=64 regime opening")
	}

	// compound section: the codec-v3 Compressor-stack sweep plus the
	// adaptive-density closed-loop runs.
	cp := report.Compound
	if cp == nil {
		t.Fatal("compound section missing (a regeneration dropped it)")
	}
	if cp.Dim <= 0 || cp.Workers < 2 || cp.Rounds <= 0 {
		t.Fatalf("compound workload stamp malformed: %+v", cp)
	}
	if len(cp.Stacks) == 0 || len(cp.Adaptive) == 0 {
		t.Fatalf("compound stacks/adaptive empty: %d/%d", len(cp.Stacks), len(cp.Adaptive))
	}
	for _, s := range cp.Stacks {
		if s.Name == "" || s.Codec == "" || s.WireBytesPerRank <= 0 || s.BytesReduction <= 0 {
			t.Fatalf("malformed compound stack row %+v", s)
		}
	}
	acceptance := false
	for _, a := range cp.Adaptive {
		if a.K0 < 1 || a.BudgetBytes < 1 || a.V1BytesPerRound <= 0 || a.SteadyBytesPerRound <= 0 || a.ReductionVsV1 <= 0 {
			t.Fatalf("malformed compound adaptive row %+v", a)
		}
		if a.Codec == "v3-qsgd8" && a.Rho == 0.001 && a.ReductionVsV1 >= 8 {
			acceptance = true
		}
	}
	if !acceptance {
		t.Fatal("no adaptive v3-qsgd8 rho=0.001 row with >= 8x wire-byte reduction over v1 — the compound acceptance bar")
	}

	// quorum section: the straggler-tolerant sweep under a WAN straggler.
	qu := report.Quorum
	if qu == nil {
		t.Fatal("quorum section missing (a regeneration dropped it)")
	}
	if qu.Dim <= 0 || qu.K < 1 || qu.P < 2 || qu.Rounds < 1 ||
		qu.SlowRank < 0 || qu.SlowRank >= qu.P || qu.TimeoutMS <= 0 || qu.DelayMS <= qu.TimeoutMS {
		t.Fatalf("quorum workload stamp malformed: %+v", qu)
	}
	if qu.IntraAlphaUS <= 0 || qu.InterAlphaUS <= qu.IntraAlphaUS {
		t.Fatalf("quorum link models malformed (inter must dwarf intra): %+v", qu)
	}
	if len(qu.Rows) < 2 {
		t.Fatalf("quorum sweep has %d rows, want the q=P anchor plus at least one q<P row", len(qu.Rows))
	}
	fullSync, quorumWins := false, false
	for _, r := range qu.Rows {
		if r.Q < core.QuorumMin(qu.P) || r.Q > qu.P || r.SimUS <= 0 || r.Speedup <= 0 {
			t.Fatalf("malformed quorum row %+v", r)
		}
		if r.Q == qu.P {
			if r.MissedRounds != 0 {
				t.Fatalf("q=P row recorded %d missed rounds, want 0 (full sync only arrives late)", r.MissedRounds)
			}
			fullSync = true
		} else {
			if r.MissedRounds != qu.Rounds {
				t.Fatalf("q=%d row missed %d/%d rounds — the %dms delay against the %dms deadline must make the straggler miss every round",
					r.Q, r.MissedRounds, qu.Rounds, qu.DelayMS, qu.TimeoutMS)
			}
			if r.Speedup > 1 {
				quorumWins = true
			}
		}
	}
	if !fullSync {
		t.Fatal("quorum sweep lacks the q=P full-sync anchor row")
	}
	if !quorumWins {
		t.Fatal("no q<P row with speedup > 1 — closing rounds without the WAN straggler must pay off")
	}

	// quorum_hier section: per-level deadline budgets at the P>=64 scale
	// where the hierarchy crossover opens.
	qh := report.QuorumHier
	if qh == nil {
		t.Fatal("quorum_hier section missing (a regeneration dropped it)")
	}
	if qh.P < 64 || qh.G != 4 {
		t.Fatalf("quorum_hier committed at P=%d G=%d, want the P>=64, G=4 regime", qh.P, qh.G)
	}
	if qh.Dim <= 0 || qh.K < 1 || qh.Rounds < 1 || qh.NumGroups != (qh.P+qh.G-1)/qh.G ||
		qh.SlowRank < 0 || qh.SlowRank >= qh.P || qh.SlowRank%qh.G == 0 {
		t.Fatalf("quorum_hier workload stamp malformed (the slow rank must be a non-leader member): %+v", qh)
	}
	if qh.GroupMS <= 0 || qh.LeaderMS <= 0 || qh.BroadcastMS <= 0 ||
		qh.GroupMS+qh.LeaderMS+qh.BroadcastMS > qh.TimeoutMS ||
		qh.DelayMS <= qh.GroupMS || qh.DelayMS <= qh.LeaderMS {
		t.Fatalf("quorum_hier budgets malformed (levels must fit the round deadline and the delay must dwarf the gather budgets): %+v", qh)
	}
	if qh.IntraAlphaUS <= 0 || qh.InterAlphaUS <= qh.IntraAlphaUS {
		t.Fatalf("quorum_hier link models malformed (inter must dwarf intra): %+v", qh)
	}
	if len(qh.Rows) < 2 {
		t.Fatalf("quorum_hier sweep has %d rows, want the full-sync anchor plus at least one partial row", len(qh.Rows))
	}
	hierAnchor, memberWin := false, false
	for _, r := range qh.Rows {
		if r.QG < core.QuorumMin(qh.G) || r.QG > qh.G || r.QL < core.QuorumMin(qh.NumGroups) || r.QL > qh.NumGroups ||
			r.SimUS <= 0 || r.Speedup <= 0 {
			t.Fatalf("malformed quorum_hier row %+v", r)
		}
		if r.QG == qh.G && r.QL == qh.NumGroups {
			if r.MissedRanks != 0 || r.MissedRounds != 0 {
				t.Fatalf("full-sync anchor row recorded misses %+v (full sync only arrives late)", r)
			}
			hierAnchor = true
			continue
		}
		if r.MissedRanks < 1 || r.MissedRounds != qh.Rounds {
			t.Fatalf("partial row %+v missed %d ranks over %d/%d rounds — the %dms delay must make the straggler miss every round",
				r, r.MissedRanks, r.MissedRounds, qh.Rounds, qh.DelayMS)
		}
		// The acceptance bar: excluding one WAN member must buy >= 1.5x
		// over the full-sync hierarchical anchor.
		if r.MissedRanks == 1 && r.Speedup >= 1.5 {
			memberWin = true
		}
	}
	if !hierAnchor {
		t.Fatal("quorum_hier sweep lacks the full-sync (q_g=G, q_l=all) anchor row")
	}
	if !memberWin {
		t.Fatal("no single-member-miss row with speedup >= 1.5 over full-sync hierarchical — the per-level budget acceptance bar")
	}
}
