package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/quant"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// This file is the compound-compression harness behind the `compound`
// experiment: it measures the codec-v3 Compressor stacks (gTop-k
// selection × quantized value streams) through the real collective, and
// the DGC-style adaptive-density controller closing the loop from
// observed wire bytes back to the per-bucket selection count. It
// maintains the compound section of BENCH_gtopk.json.

// Adaptive-run shape: enough rounds for the clamped (×0.75..×1.25 per
// round, ControlLag behind) controller to settle from k0 to the budget,
// plus a steady-state tail to average.
const (
	compoundRounds      = 32
	compoundSteadyTail  = 8
	compoundWorkers     = 4
	compoundBaseRounds  = 4
	compoundBudgetDivV1 = 9 // steer to v1/9 so steady state clears 8x with slack
)

// CompoundSection is the compound section of BENCH_gtopk.json: the
// fixed-density Compressor-stack sweep plus the adaptive-density runs.
type CompoundSection struct {
	// Dim/Workers/Layers describe the workload (same layered gradient as
	// the wire_codec section); Rounds the adaptive runs' length.
	Dim     int `json:"dim"`
	Workers int `json:"workers"`
	Layers  int `json:"layers"`
	Rounds  int `json:"rounds"`
	// Stacks holds one cell per (fabric, rho, stack): gTop-k selection at
	// fixed density with the named value codec on the wire.
	Stacks []WireCodecResult `json:"stacks"`
	// Adaptive holds the closed-loop runs: the per-bucket controller
	// steers the encoded frame size toward v1/9 of the starting density's
	// flat frame, shrinking the effective k until the compound reduction
	// clears the byte budget.
	Adaptive []AdaptiveDensityResult `json:"adaptive"`
}

// AdaptiveDensityResult is one closed-loop adaptive-density run through
// the real bucketed pipeline.
type AdaptiveDensityResult struct {
	Name   string  `json:"name"`
	Fabric string  `json:"fabric"`
	Rho    float64 `json:"rho"`
	Codec  string  `json:"codec"`
	Rounds int     `json:"rounds"`
	// K0 is the static DensityToK starting count; FinalK the controller's
	// settled count after Rounds.
	K0     int `json:"k0"`
	FinalK int `json:"final_k"`
	// BudgetBytes is the controller's per-round frame budget
	// (v1-flat frame at K0 divided by compoundBudgetDivV1).
	BudgetBytes int64 `json:"budget_bytes"`
	// V1BytesPerRound is the measured all-rank wire volume of one static
	// v1 round at K0; SteadyBytesPerRound the adaptive run's mean over
	// the final compoundSteadyTail rounds.
	V1BytesPerRound    int64 `json:"v1_bytes_per_round"`
	SteadyBytesPerRound int64 `json:"steady_bytes_per_round"`
	// ReductionVsV1 = V1BytesPerRound / SteadyBytesPerRound: the
	// compound (quantization × adapted density) wire-byte reduction over
	// flat v1 frames at the starting density.
	ReductionVsV1 float64 `json:"reduction_vs_v1"`
}

// compoundStacks are the fixed-density Compressor stacks the sweep
// measures, alongside the v1 baseline each cell's reduction divides by.
func compoundStacks() []sparse.Codec {
	return []sparse.Codec{
		sparse.CodecV1, sparse.CodecV3,
		sparse.CodecV3Q8, sparse.CodecV3Q4, sparse.CodecV3Q2, sparse.CodecV3T,
	}
}

// adaptiveRun drives the real bucketed pipeline (one bucket spanning
// dim) for `rounds` iterations over an in-process mesh and returns the
// total wire bytes of each round plus the final per-bucket k. When
// budget > 0, every rank's aggregator runs the adaptive-density
// controller with that per-round frame budget.
func adaptiveRun(dim, rounds, p int, rho float64, codec sparse.Codec, budget int64, seed uint64) (perRound []int64, finalK int, err error) {
	fab, err := transport.NewInProcWire(p, codec.WireVersion())
	if err != nil {
		return nil, 0, err
	}
	defer fab.Close() //nolint:errcheck // bench teardown
	comms := make([]*collective.Comm, p)
	aggs := make([]*core.BucketedAggregator, p)
	for r := 0; r < p; r++ {
		comms[r] = collective.New(fab.Conn(r))
		if codec.Value().Quantized() {
			comms[r].SetCompressor(quant.NewStack(codec.Value(), seed).Fork(uint64(r)))
		}
		aggs[r], err = core.NewBucketedAggregator(comms[r], []int{0, dim}, rho)
		if err != nil {
			return nil, 0, err
		}
		if budget > 0 {
			if err := aggs[r].SetAdaptiveDensity(budget, seed); err != nil {
				return nil, 0, err
			}
		}
	}
	srcs := make([]*prng.Source, p)
	for r := range srcs {
		srcs[r] = prng.New(seed + 977*uint64(r))
	}
	perRound = make([]int64, rounds)
	var prev int64
	for round := 0; round < rounds; round++ {
		grads := make([][]float32, p)
		for r := range grads {
			grads[r] = layeredGradient(srcs[r], dim, wireCodecLayers, 0.5)
		}
		var wg sync.WaitGroup
		var errMu sync.Mutex
		var roundErr error
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if _, e := aggs[rank].Aggregate(context.Background(), grads[rank]); e != nil {
					errMu.Lock()
					if roundErr == nil {
						roundErr = e
					}
					errMu.Unlock()
				}
			}(r)
		}
		wg.Wait()
		if roundErr != nil {
			return nil, 0, fmt.Errorf("bench: adaptive round %d: %w", round, roundErr)
		}
		var total int64
		for r := 0; r < p; r++ {
			total += comms[r].Stats().BytesSent
		}
		perRound[round] = total - prev
		prev = total
	}
	ks := aggs[0].BucketKs()
	for _, k := range ks {
		finalK += k
	}
	return perRound, finalK, nil
}

// measureAdaptive runs the v1 static baseline at k0 and the adaptive
// compound run, and folds both into one result row.
func measureAdaptive(dim int, rho float64, codec sparse.Codec, seed uint64) (AdaptiveDensityResult, error) {
	p := compoundWorkers
	k0 := core.DensityToK(dim, rho)
	budget := int64(sparse.EncodedSize(k0)) / compoundBudgetDivV1
	if budget < 1 {
		budget = 1
	}
	res := AdaptiveDensityResult{
		Name:   fmt.Sprintf("adaptive/inproc/rho=%g/%s", rho, codec),
		Fabric: "inproc", Rho: rho, Codec: codec.String(),
		Rounds: compoundRounds, K0: k0, BudgetBytes: budget,
	}
	base, _, err := adaptiveRun(dim, compoundBaseRounds, p, rho, sparse.CodecV1, 0, seed)
	if err != nil {
		return res, err
	}
	var v1Sum int64
	for _, b := range base {
		v1Sum += b
	}
	res.V1BytesPerRound = v1Sum / int64(len(base))

	perRound, finalK, err := adaptiveRun(dim, compoundRounds, p, rho, codec, budget, seed)
	if err != nil {
		return res, err
	}
	var tail int64
	for _, b := range perRound[len(perRound)-compoundSteadyTail:] {
		tail += b
	}
	res.SteadyBytesPerRound = tail / compoundSteadyTail
	res.FinalK = finalK
	if res.SteadyBytesPerRound > 0 {
		res.ReductionVsV1 = float64(res.V1BytesPerRound) / float64(res.SteadyBytesPerRound)
	}
	return res, nil
}

// Compound runs the Compressor-stack sweep and the adaptive-density
// closed loop and returns the rendered tables plus the JSON section.
func Compound(_ context.Context, opt Options) (string, *CompoundSection, error) {
	dim := wireCodecDim
	fabrics := []string{"inproc", "tcp"}
	densities := []float64{0.001, 0.01}
	if opt.Quick {
		dim = wireCodecQuickDim
		fabrics = []string{"inproc"}
	}
	section := &CompoundSection{
		Dim: dim, Workers: compoundWorkers, Layers: wireCodecLayers,
		Rounds: compoundRounds,
	}

	var sb strings.Builder
	sb.WriteString("Compound compression (codec v3): gTop-k x quantized value streams\n")
	fmt.Fprintf(&sb, "P=%d, dim=%d, %d-layer gradient, %d CPUs\n\n", compoundWorkers, dim, wireCodecLayers, runtime.NumCPU())

	stackTb := metrics.NewTable("config", "ns/op", "wire B/rank", "reduction vs v1", "tally ratio")
	v1Bytes := map[string]int64{}
	for _, fabric := range fabrics {
		for _, rho := range densities {
			for _, codec := range compoundStacks() {
				r, err := measureWireCodec(fabric, dim, rho, codec, opt.seed(), opt.TCPNagle)
				if err != nil {
					return "", nil, err
				}
				key := fmt.Sprintf("%s/%g", fabric, rho)
				if codec == sparse.CodecV1 {
					v1Bytes[key] = r.WireBytesPerRank
				}
				if base := v1Bytes[key]; base > 0 && r.WireBytesPerRank > 0 {
					r.BytesReduction = float64(base) / float64(r.WireBytesPerRank)
				}
				section.Stacks = append(section.Stacks, r)
				stackTb.AddRow(r.Name, fmt.Sprint(r.NsPerOp), fmt.Sprint(r.WireBytesPerRank),
					fmt.Sprintf("%.2fx", r.BytesReduction), fmt.Sprintf("%.2fx", r.TallyRatio))
			}
		}
	}
	sb.WriteString(stackTb.String())
	sb.WriteString("\nEach stack is top-k selection + the named value codec on the wire;\nquantization error folds into the error-feedback residual.\n\n")

	adaptTb := metrics.NewTable("config", "k0", "final k", "v1 B/round", "steady B/round", "reduction vs v1")
	for _, rho := range densities {
		for _, codec := range []sparse.Codec{sparse.CodecV3Q8, sparse.CodecV3T} {
			r, err := measureAdaptive(dim, rho, codec, opt.seed())
			if err != nil {
				return "", nil, err
			}
			section.Adaptive = append(section.Adaptive, r)
			adaptTb.AddRow(r.Name, fmt.Sprint(r.K0), fmt.Sprint(r.FinalK),
				fmt.Sprint(r.V1BytesPerRound), fmt.Sprint(r.SteadyBytesPerRound),
				fmt.Sprintf("%.2fx", r.ReductionVsV1))
		}
	}
	fmt.Fprintf(&sb, "Adaptive density (bucketed pipeline, %d rounds, budget = v1 frame / %d):\n\n", compoundRounds, compoundBudgetDivV1)
	sb.WriteString(adaptTb.String())
	sb.WriteString("\nThe per-bucket controller shrinks k from the observed compressed-byte\nratio toward the budget; reduction = measured v1 bytes at k0 / steady\nadaptive bytes, i.e. quantization and density adaptation compounded.\n")
	return sb.String(), section, nil
}

// WriteCompoundJSON runs the harness and folds the compound section
// into BENCH_gtopk.json (or opt.JSONPath), preserving the other
// experiments' sections.
func WriteCompoundJSON(ctx context.Context, opt Options) (string, error) {
	out, section, err := Compound(ctx, opt)
	if err != nil {
		return "", err
	}
	path := opt.JSONPath
	if path == "" {
		path = "BENCH_gtopk.json"
	}
	report, err := loadHotPathReport(path)
	if err != nil {
		report = &hotPathReport{
			Schema:      hotPathSchema,
			GeneratedBy: "gtopk-bench -exp compound",
			Seed:        opt.seed(),
			Dim:         hotPathDim,
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
		}
		report.Baseline.Commit = baselineCommit
		report.Baseline.Results = baselineHotPath
		report.Prev.Commit = prevCommit
		report.Prev.Results = prevHotPath
	}
	report.Compound = section
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: write %s: %w", path, err)
	}
	return out + fmt.Sprintf("\nupdated %s (compound section: %d stack cells, %d adaptive runs)\n",
		path, len(section.Stacks), len(section.Adaptive)), nil
}
