package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// This file is the quorum experiment: it runs the REAL straggler-tolerant
// quorum gTop-k collective under a seeded link-level fault schedule — one
// rank sits alone across a WAN boundary and its outgoing frames are
// delayed far past the per-round deadline — sweeping the quorum size
// q ∈ {P, P−1, ⌈0.75·P⌉}. Every round is charged on the heterogeneous
// per-link α-β model (datacenter intra-group, WAN inter-group), so the
// recorded times are a pure function of (seed, straggler schedule): a
// round that closes without its WAN straggler never pays the WAN gather
// leg, which is exactly the speedup the quorum buys. Replica agreement
// (bitwise) and the expected participant sets are verified on every
// round before a row is recorded.

// Quorum workload shape: the hotpath dimension at the paper's denser
// setting keeps k large enough that verdict frames dominate headers.
const (
	quorumRho = 0.01
	// quorumDelay is the injected delay on the slow rank's outgoing
	// links; quorumTimeout is the per-round gather deadline. The 4x gap
	// makes the straggler schedule deterministic: a delayed frame can
	// never beat the deadline, so q < P rounds always close without the
	// slow rank and q = P rounds always wait for it.
	quorumDelay   = 300 * time.Millisecond
	quorumTimeout = 75 * time.Millisecond
)

// quorumWAN returns the inter-group (WAN) α-β model: ~100x the
// datacenter startup latency and ~10x the per-element cost, the regime
// where closing a round without the WAN straggler pays off.
func quorumWAN() netsim.Model {
	return netsim.Model{Alpha: 40 * time.Millisecond, Beta: 400 * time.Nanosecond}
}

// QuorumResult is one swept quorum size.
type QuorumResult struct {
	Q int `json:"q"`
	// MissedRounds counts rounds the slow rank's contribution missed
	// (refunded to its residual by the aggregator in training use).
	MissedRounds int `json:"missed_rounds"`
	// SimUS is the fast ranks' critical path: the maximum simulated
	// clock across the non-straggling ranks, summed over all rounds.
	SimUS int64 `json:"sim_us"`
	// Speedup is the q=P row's SimUS over this row's (>1: the quorum
	// buys time on heterogeneous links).
	Speedup float64 `json:"speedup"`
}

// QuorumSection is the quorum section of BENCH_gtopk.json.
type QuorumSection struct {
	Dim          int            `json:"dim"`
	Rho          float64        `json:"rho"`
	K            int            `json:"k"`
	P            int            `json:"p"`
	SlowRank     int            `json:"slow_rank"`
	Rounds       int            `json:"rounds"`
	TimeoutMS    int64          `json:"timeout_ms"`
	DelayMS      int64          `json:"delay_ms"`
	IntraAlphaUS float64        `json:"intra_alpha_us"`
	IntraBetaNS  float64        `json:"intra_beta_ns"`
	InterAlphaUS float64        `json:"inter_alpha_us"`
	InterBetaNS  float64        `json:"inter_beta_ns"`
	Rows         []QuorumResult `json:"rows"`
}

// quorumSweep returns the deduplicated quorum sizes {P, P−1, ⌈0.75·P⌉},
// largest first, clamped to the legal [QuorumMin(P), P] range.
func quorumSweep(p int) []int {
	cand := []int{p, p - 1, (3*p + 3) / 4}
	var qs []int
	for _, q := range cand {
		if q < core.QuorumMin(p) || q > p {
			continue
		}
		dup := false
		for _, seen := range qs {
			if seen == q {
				dup = true
				break
			}
		}
		if !dup {
			qs = append(qs, q)
		}
	}
	return qs
}

// runQuorumConfig runs `rounds` quorum rounds at quorum size q on a
// fresh fault-injected in-process fabric and returns the fast ranks'
// total simulated time plus how many rounds the slow rank missed. Every
// round's verdict is checked for bitwise replica agreement and for the
// expected participant set before it counts.
func runQuorumConfig(vecs []*sparse.Vector, k, q, rounds, slow int, lm *netsim.LinkModel, plan transport.FaultPlan) (time.Duration, int, error) {
	p := len(vecs)
	base, err := transport.NewInProc(p)
	if err != nil {
		return 0, 0, err
	}
	fab := transport.NewFaultInjector(base, plan)
	defer fab.Close()

	qc := core.QuorumConfig{Q: q, Timeout: quorumTimeout}
	var (
		wg     sync.WaitGroup
		clocks = make([]time.Duration, p)
		outs   = make([][]*sparse.Vector, rounds)
		missed = make([][][]int, rounds)
		errs   = make([]error, p)
	)
	for rd := range outs {
		outs[rd] = make([]*sparse.Vector, p)
		missed[rd] = make([][]int, p)
	}
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var clock netsim.Clock
			comm := collective.New(fab.Conn(rank)).WithClock(&clock, lm.Intra).WithLinks(lm)
			for rd := 0; rd < rounds; rd++ {
				out, _, miss, err := core.QuorumGTopKAllReduce(context.Background(), comm, vecs[rank].Clone(), k, qc)
				if err != nil {
					errs[rank] = fmt.Errorf("round %d: %w", rd, err)
					return
				}
				outs[rd][rank] = out
				missed[rd][rank] = miss
			}
			clocks[rank] = clock.Now()
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("rank %d: %w", rank, err)
		}
	}

	slowMisses := 0
	for rd := 0; rd < rounds; rd++ {
		for r := 1; r < p; r++ {
			if !vectorsEqualBits(outs[rd][0], outs[rd][r]) {
				return 0, 0, fmt.Errorf("q=%d round %d: replicas diverged (rank %d != rank 0)", q, rd, r)
			}
			if fmt.Sprint(missed[rd][r]) != fmt.Sprint(missed[rd][0]) {
				return 0, 0, fmt.Errorf("q=%d round %d: missed sets disagree: rank %d saw %v, rank 0 saw %v",
					q, rd, r, missed[rd][r], missed[rd][0])
			}
		}
		switch miss := missed[rd][0]; {
		case q == p && len(miss) != 0:
			return 0, 0, fmt.Errorf("q=P round %d closed without %v", rd, miss)
		case q < p && (len(miss) != 1 || miss[0] != slow):
			return 0, 0, fmt.Errorf("q=%d round %d: missed %v, want [%d] (delay is %dx the deadline)",
				q, rd, miss, slow, quorumDelay/quorumTimeout)
		}
		if q < p {
			slowMisses++
		}
	}

	var fastCritical time.Duration
	for r := 0; r < p; r++ {
		if r != slow && clocks[r] > fastCritical {
			fastCritical = clocks[r]
		}
	}
	return fastCritical, slowMisses, nil
}

// Quorum runs the sweep and returns the rendered table plus the
// section. Quick mode shrinks the world and the round count.
func Quorum(_ context.Context, opt Options) (string, *QuorumSection, error) {
	p, rounds, dim := 8, 3, hotPathDim
	if opt.Quick {
		p, rounds, dim = 4, 2, hotPathDim/4
	}
	k := core.DensityToK(dim, quorumRho)
	slow := p - 1
	intra := netsim.Paper1GbE()
	inter := quorumWAN()
	// Group the fast ranks together and leave the slow rank alone across
	// the WAN boundary: every link it contributes over is an Inter link.
	lm, err := netsim.NewLinkModel(intra, inter, p-1)
	if err != nil {
		return "", nil, err
	}
	plan := transport.FaultPlan{Seed: opt.seed(), Delay: quorumDelay, SlowRanks: []int{slow}}
	vecs := hotPathVectors(opt.seed(), p, dim, k)

	section := &QuorumSection{
		Dim: dim, Rho: quorumRho, K: k, P: p, SlowRank: slow, Rounds: rounds,
		TimeoutMS:    quorumTimeout.Milliseconds(),
		DelayMS:      quorumDelay.Milliseconds(),
		IntraAlphaUS: float64(intra.Alpha) / float64(time.Microsecond),
		IntraBetaNS:  float64(intra.Beta) / float64(time.Nanosecond),
		InterAlphaUS: float64(inter.Alpha) / float64(time.Microsecond),
		InterBetaNS:  float64(inter.Beta) / float64(time.Nanosecond),
	}

	var fullSync time.Duration
	for _, q := range quorumSweep(p) {
		sim, misses, err := runQuorumConfig(vecs, k, q, rounds, slow, lm, plan)
		if err != nil {
			return "", nil, fmt.Errorf("quorum q=%d: %w", q, err)
		}
		if q == p {
			fullSync = sim
		}
		speedup := 1.0
		if fullSync > 0 && sim > 0 {
			speedup = float64(fullSync) / float64(sim)
		}
		section.Rows = append(section.Rows, QuorumResult{
			Q:            q,
			MissedRounds: misses,
			SimUS:        sim.Microseconds(),
			Speedup:      speedup,
		})
	}

	var sb strings.Builder
	sb.WriteString("Quorum: straggler-tolerant gTop-k under a WAN straggler (real collective, injected faults)\n")
	fmt.Fprintf(&sb, "dim=%d, rho=%g (k=%d), P=%d, rank %d alone across the WAN boundary with its\noutgoing frames delayed %v against a %v round deadline; intra %v+%v/elem,\ninter %v+%v/elem; times are the fast ranks' simulated critical path over %d rounds\n(bitwise replica agreement verified per round)\n\n",
		section.Dim, section.Rho, section.K, section.P, section.SlowRank,
		quorumDelay, quorumTimeout, intra.Alpha, intra.Beta, inter.Alpha, inter.Beta, rounds)
	tb := metrics.NewTable("q", "missed rounds", "sim time", "speedup vs q=P")
	for _, r := range section.Rows {
		tb.AddRow(fmt.Sprint(r.Q), fmt.Sprint(r.MissedRounds),
			fmt.Sprintf("%.2fms", float64(r.SimUS)/1000), fmt.Sprintf("%.2fx", r.Speedup))
	}
	sb.WriteString(tb.String())
	sb.WriteString("\nAt q=P the deadline only guards liveness: the round waits for the WAN rank and\npays its links on both legs. Any q<P closes the gather at the deadline with the\ndatacenter ranks only — the straggler's block is refunded to its residual, the\nverdict still reaches it, and the fast ranks stop paying the WAN gather leg.\n")
	return sb.String(), section, nil
}

// WriteQuorumJSON runs the sweep and folds the quorum section into
// BENCH_gtopk.json (or opt.JSONPath), preserving the other experiments'
// sections.
func WriteQuorumJSON(ctx context.Context, opt Options) (string, error) {
	out, section, err := Quorum(ctx, opt)
	if err != nil {
		return "", err
	}
	path := opt.JSONPath
	if path == "" {
		path = "BENCH_gtopk.json"
	}
	report, err := loadHotPathReport(path)
	if err != nil {
		// No (or unreadable) artifact: start a minimal report carrying
		// just this section plus the environment stamp.
		report = &hotPathReport{
			Schema:      hotPathSchema,
			GeneratedBy: "gtopk-bench -exp quorum",
			Seed:        opt.seed(),
			Dim:         hotPathDim,
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
		}
		report.Baseline.Commit = baselineCommit
		report.Baseline.Results = baselineHotPath
		report.Prev.Commit = prevCommit
		report.Prev.Results = prevHotPath
	}
	report.Quorum = section
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: write %s: %w", path, err)
	}
	return out + fmt.Sprintf("\nwrote %s (%d quorum rows)\n", path, len(section.Rows)), nil
}
