// Package bench regenerates every table and figure of the paper's
// evaluation section (Section IV) plus this reproduction's ablations.
// Each experiment returns its results as aligned text tables — one row
// per x-axis point of the original plot — so "regenerating Fig. 10" means
// printing the exact series the paper draws.
//
// Experiments come in two kinds:
//
//   - analytic (this file): communication-time results (Figs 8, 9, 10,
//     11, Tables I, IV) driven by the α-β model the paper itself fits and
//     uses (Eqs 5-7), evaluated with the paper's full-size model
//     parameters; and
//   - convergence (convergence.go): real distributed training runs on
//     the CPU-scaled models and synthetic datasets (Figs 1, 5, 6, 7, 12,
//     13, 14).
package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/nn/models"
)

// Table1 reproduces Table I: the communication complexity and time-cost
// models of the three aggregation algorithms, evaluated at the given
// worker counts with m = 25e6 (ResNet-50) and ρ = 0.001.
func Table1(model netsim.Model) string {
	const m = 25_000_000
	k := m / 1000
	var sb strings.Builder
	sb.WriteString("Table I: communication complexity of gradient aggregation algorithms\n")
	sb.WriteString("(m = 25e6 parameters, rho = 0.001, alpha/beta from the paper's 1GbE fit)\n\n")
	tb := metrics.NewTable("Algorithm", "Complexity", "Time cost model", "P=4", "P=32", "P=128")
	tb.AddRowf("DenseAllReduce", "O(m)", "2(P-1)a + 2(P-1)/P mB",
		model.DenseAllReduce(4, m), model.DenseAllReduce(32, m), model.DenseAllReduce(128, m))
	tb.AddRowf("TopKAllReduce", "O(kP)", "log(P)a + 2(P-1)kB",
		model.TopKAllReduce(4, k), model.TopKAllReduce(32, k), model.TopKAllReduce(128, k))
	tb.AddRowf("gTopKAllReduce", "O(k logP)", "2log(P)a + 4k log(P)B",
		model.GTopKAllReduce(4, k), model.GTopKAllReduce(32, k), model.GTopKAllReduce(128, k))
	sb.WriteString(tb.String())
	return sb.String()
}

// Fig8 reproduces Fig. 8: point-to-point transfer time versus message
// size, with the α-β prediction line and jittered "measurements"
// (reps samples per size over a simulated link with log-normal noise).
func Fig8(model netsim.Model, reps int, seed uint64) string {
	link := netsim.NewLink(model, 0.05, seed)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 8: point-to-point communication time vs message size\n")
	fmt.Fprintf(&sb, "(predicted: alpha=%.3fms beta=%.6fms/element; measured: %d reps on jittered link)\n\n",
		float64(model.Alpha)/1e6, float64(model.Beta)/1e6, reps)
	tb := metrics.NewTable("# params", "predicted", "measured mean", "measured std")
	for _, n := range []int{0, 100_000, 200_000, 400_000, 600_000, 800_000, 1_000_000} {
		var sum, sumSq float64
		for r := 0; r < reps; r++ {
			ms := float64(link.Transfer(n)) / float64(time.Millisecond)
			sum += ms
			sumSq += ms * ms
		}
		mean := sum / float64(reps)
		variance := sumSq/float64(reps) - mean*mean
		if variance < 0 {
			variance = 0
		}
		tb.AddRowf(n, model.PointToPoint(n),
			fmt.Sprintf("%.2fms", mean), fmt.Sprintf("%.3fms", sqrt(variance)))
	}
	sb.WriteString(tb.String())
	return sb.String()
}

// Fig9 reproduces Fig. 9: TopKAllReduce vs gTopKAllReduce time, left
// against the number of workers (m = 25e6, ρ = 0.001) and right against
// the model size (P = 32).
func Fig9(model netsim.Model) string {
	var sb strings.Builder
	sb.WriteString("Fig 9 (left): AllReduce time vs workers, m=25e6, rho=0.001\n\n")
	left := metrics.NewTable("P", "TopKAllReduce", "gTopKAllReduce", "ratio topk/gtopk")
	const m = 25_000_000
	k := m / 1000
	for _, p := range []int{4, 8, 16, 32, 64, 128} {
		tk := model.TopKAllReduce(p, k)
		gt := model.GTopKAllReduce(p, k)
		left.AddRowf(p, tk, gt, float64(tk)/float64(gt))
	}
	sb.WriteString(left.String())

	sb.WriteString("\nFig 9 (right): AllReduce time vs model size, P=32, rho=0.001\n\n")
	right := metrics.NewTable("# params", "TopKAllReduce", "gTopKAllReduce", "ratio topk/gtopk")
	for _, mm := range []int{1_000_000, 2_500_000, 10_000_000, 25_000_000, 100_000_000} {
		kk := mm / 1000
		tk := model.TopKAllReduce(32, kk)
		gt := model.GTopKAllReduce(32, kk)
		right.AddRowf(mm, tk, gt, float64(tk)/float64(gt))
	}
	sb.WriteString(right.String())
	return sb.String()
}

// Effective-bandwidth calibration factors (EXPERIMENTS.md §Calibration).
//
// The α-β model prices raw point-to-point transfers, which is what the
// paper's Fig. 8 fits. Its measured end-to-end training times (Table IV,
// Fig. 10) however include framework overheads the raw model misses:
// Horovod/NCCL tensor handling and host-GPU staging over PCIe ×1 for the
// dense path, and AllGather synchronisation plus index-handling for the
// sparse paths. Backing these out of Table IV gives an effective
// bandwidth utilisation of roughly 1/8 for dense ring AllReduce and 1/20
// for the sparse collectives. The factors below inflate only the β
// (bandwidth) term; latency rounds are unaffected. With them in place the
// reproduced g/d and g/t speedups land within ~25% of every Table IV
// entry while preserving all orderings and crossovers.
const (
	denseBetaFactor  = 8.0
	sparseBetaFactor = 20.0
)

// calibratedComm evaluates the Table I cost models with the calibrated β.
func calibratedComm(model netsim.Model, algo string, p, m, k int) time.Duration {
	if p < 2 {
		return 0
	}
	alpha := float64(model.Alpha)
	beta := float64(model.Beta)
	logP := math.Log2(float64(p))
	switch algo {
	case "dense":
		return time.Duration(2*float64(p-1)*alpha +
			denseBetaFactor*2*float64(p-1)/float64(p)*float64(m)*beta)
	case "topk":
		return time.Duration(logP*alpha +
			sparseBetaFactor*2*float64(p-1)*float64(k)*beta)
	case "gtopk":
		return time.Duration(2*logP*alpha +
			sparseBetaFactor*4*float64(k)*logP*beta)
	case "gtopk-ps":
		// Star topology: the server serialises 2(P-1) sparse messages.
		return time.Duration(2*float64(p-1)*alpha +
			sparseBetaFactor*2*float64(p-1)*2*float64(k)*beta)
	default:
		panic(fmt.Sprintf("bench: unknown algorithm %q", algo))
	}
}

// iterBreakdown models one training iteration of pm under the given
// algorithm and worker count (the building block of Figs 10/11 and
// Table IV).
func iterBreakdown(model netsim.Model, pm models.PaperModel, algo string, p int) metrics.Breakdown {
	k := pm.Params / 1000 // rho = 0.001 throughout the paper's Fig 10
	b := metrics.Breakdown{
		Compute: time.Duration(pm.TfTbMs * float64(time.Millisecond)),
	}
	if algo != "dense" {
		b.Compress = time.Duration(pm.CompressMs * float64(time.Millisecond))
	}
	b.Comm = calibratedComm(model, algo, p, pm.Params, k)
	return b
}

// Fig10 reproduces Fig. 10: weak-scaling efficiency of dense, Top-k and
// gTop-k S-SGD for the four paper CNNs over P in {4, 8, 16, 32}.
func Fig10(model netsim.Model) string {
	var sb strings.Builder
	sb.WriteString("Fig 10: scaling efficiency (Eq. 4), rho=0.001\n")
	for _, pm := range models.PaperModels() {
		fmt.Fprintf(&sb, "\n%s (m=%d, b=%d):\n\n", pm.Name, pm.Params, pm.BatchPerWorker)
		tb := metrics.NewTable("P", "dense", "topk", "gtopk")
		for _, p := range []int{4, 8, 16, 32} {
			row := make([]string, 0, 4)
			row = append(row, fmt.Sprintf("%d", p))
			for _, algo := range []string{"dense", "topk", "gtopk"} {
				e := iterBreakdown(model, pm, algo, p).ScalingEfficiency()
				row = append(row, fmt.Sprintf("%.1f%%", 100*e))
			}
			tb.AddRow(row...)
		}
		sb.WriteString(tb.String())
	}
	return sb.String()
}

// Table4 reproduces Table IV: system throughput on 32 workers with the
// g/d (gTop-k vs dense) and g/t (gTop-k vs Top-k) speedups.
func Table4(model netsim.Model) string {
	var sb strings.Builder
	sb.WriteString("Table IV: training throughput on a 32-worker cluster (samples/s)\n\n")
	tb := metrics.NewTable("Model", "Dense S-SGD", "Top-k", "gTop-k", "g/d", "g/t")
	const p = 32
	for _, pm := range models.PaperModels() {
		var tput [3]float64
		for i, algo := range []string{"dense", "topk", "gtopk"} {
			bd := iterBreakdown(model, pm, algo, p)
			tput[i] = metrics.Throughput(p, pm.BatchPerWorker, bd.Total())
		}
		tb.AddRow(pm.Name,
			fmt.Sprintf("%.0f", tput[0]),
			fmt.Sprintf("%.0f", tput[1]),
			fmt.Sprintf("%.0f", tput[2]),
			fmt.Sprintf("%.1fx", tput[2]/tput[0]),
			fmt.Sprintf("%.1fx", tput[2]/tput[1]))
	}
	sb.WriteString(tb.String())
	return sb.String()
}

// Fig11 reproduces Fig. 11: the compute/compression/communication time
// breakdown of gTop-k S-SGD on 32 workers.
func Fig11(model netsim.Model) string {
	var sb strings.Builder
	sb.WriteString("Fig 11: gTop-k iteration time breakdown on 32 workers\n\n")
	tb := metrics.NewTable("Model", "compute", "compression", "communication")
	for _, pm := range models.PaperModels() {
		bd := iterBreakdown(model, pm, "gtopk", 32)
		c1, c2, c3 := bd.Fractions()
		tb.AddRow(pm.Name,
			fmt.Sprintf("%.1f%%", 100*c1),
			fmt.Sprintf("%.1f%%", 100*c2),
			fmt.Sprintf("%.1f%%", 100*c3))
	}
	sb.WriteString(tb.String())
	return sb.String()
}

// AblationPSMode compares tree gTop-k with parameter-server gTop-k
// communication time as P grows (extension A3).
func AblationPSMode(model netsim.Model) string {
	var sb strings.Builder
	sb.WriteString("Ablation: tree gTopKAllReduce vs parameter-server star, m=25e6, rho=0.001\n\n")
	tb := metrics.NewTable("P", "tree", "ps-star", "tree speedup")
	const m = 25_000_000
	k := m / 1000
	for _, p := range []int{4, 8, 16, 32, 64} {
		tree := model.GTopKAllReduce(p, k)
		star := time.Duration(2*(p-1)) * model.PointToPoint(2*k)
		tb.AddRowf(p, tree, star, float64(star)/float64(tree))
	}
	sb.WriteString(tb.String())
	return sb.String()
}

// AblationPipeline models the paper's Section VII future-work idea:
// overlapping gradient communication with backward computation. The
// upper bound of pipelining is t_iter = max(t_f+t_b, t_comm) + t_compr
// instead of their sum; the table reports how much headroom each model
// has at P=32 under gTop-k.
func AblationPipeline(model netsim.Model) string {
	var sb strings.Builder
	sb.WriteString("Ablation: pipelining headroom (perfect comm/compute overlap, gTop-k, P=32)\n\n")
	tb := metrics.NewTable("Model", "serial iter", "pipelined iter", "speedup")
	for _, pm := range models.PaperModels() {
		bd := iterBreakdown(model, pm, "gtopk", 32)
		serial := bd.Total()
		overlapped := bd.Compute
		if bd.Comm > overlapped {
			overlapped = bd.Comm
		}
		pipelined := overlapped + bd.Compress
		tb.AddRowf(pm.Name, serial, pipelined, float64(serial)/float64(pipelined))
	}
	sb.WriteString(tb.String())
	sb.WriteString("\nCompute-bound models (ResNets) already hide most communication;\n")
	sb.WriteString("fc-heavy models gain up to the comm/compute ratio.\n")
	return sb.String()
}

// AblationBandwidth shows how the dense/gTop-k gap closes on faster
// networks (the paper's motivation is specifically LOW bandwidth).
func AblationBandwidth() string {
	var sb strings.Builder
	sb.WriteString("Ablation: gTop-k advantage vs network speed (VGG-16, P=32)\n\n")
	tb := metrics.NewTable("Network", "dense iter", "gtopk iter", "g/d speedup")
	pm := models.PaperModels()[0]
	for _, net := range []struct {
		name  string
		model netsim.Model
	}{
		{"1GbE (paper)", netsim.Paper1GbE()},
		{"10GbE", netsim.TenGbE()},
	} {
		d := iterBreakdown(net.model, pm, "dense", 32).Total()
		g := iterBreakdown(net.model, pm, "gtopk", 32).Total()
		tb.AddRowf(net.name, d, g, float64(d)/float64(g))
	}
	sb.WriteString(tb.String())
	return sb.String()
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
