// Package f16 implements IEEE 754 binary16 (half-precision) conversion,
// shared by the v2 sparse wire codec's fp16 value mode (internal/sparse)
// and the quantization baselines (internal/quant). Conversion to half
// uses round-to-nearest-even — the rounding mode NCCL, Gloo and the DGC
// lineage use for gradient payloads — and conversion back to float32 is
// exact for every finite half value.
//
// Error bound: for |x| in the binary16 normal range [2^-14, 65504], the
// relative error of a Bits/From round trip is at most 2^-11 (≈ 0.049%).
// |x| < 2^-24 flushes toward signed zero; |x| > 65504 overflows to ±Inf.
package f16

import "math"

// Bits converts f to its binary16 representation with round-to-nearest-
// even. Values beyond the half range become ±Inf; NaN payloads keep their
// top 10 mantissa bits (with the quiet bit forced, so the result is
// still a NaN), which makes From(Bits(x)) the identity on every binary16
// bit pattern round-tripped through float32.
func Bits(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	mant := b & 0x7fffff

	if exp == 0xff { // Inf or NaN
		if mant == 0 {
			return sign | 0x7c00
		}
		m := uint16(mant >> 13)
		if m == 0 {
			m = 0x200 // payload vanished in the narrowing: force quiet bit
		}
		return sign | 0x7c00 | m
	}

	e := exp - 112 // rebase: float32 bias 127 -> binary16 bias 15
	switch {
	case e >= 0x1f: // overflow
		return sign | 0x7c00
	case e >= 1: // normal half
		m := mant >> 13
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			m++ // may carry into the exponent; e<<10 + m encodes that too
		}
		return sign | uint16(e)<<10 + uint16(m)
	case e >= -10: // subnormal half
		sig := mant | 0x800000
		s := uint(14 - e) // 14..24
		m := sig >> s
		rem := sig & (1<<s - 1)
		half := uint32(1) << (s - 1)
		if rem > half || (rem == half && m&1 == 1) {
			m++ // m == 0x400 after carry encodes the smallest normal
		}
		return sign | uint16(m)
	default: // underflow
		return sign
	}
}

// From converts a binary16 bit pattern to float32, exactly for every
// finite input.
func From(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)

	switch {
	case exp == 0x1f: // Inf or NaN (payload preserved in the top bits)
		return math.Float32frombits(sign | 0x7f800000 | mant<<13)
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal half: normalize into a float32 normal.
		e := uint32(113) // would-be rebased exponent of the smallest normal
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (mant&0x3ff)<<13)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | mant<<13)
	}
}

// Round quantizes f through binary16 and back: the value a receiver will
// reconstruct from an fp16 wire frame. Idempotent: Round(Round(x)) ==
// Round(x) bit-for-bit.
func Round(f float32) float32 { return From(Bits(f)) }

// RoundSlice applies Round to every element of xs in place. It is THE
// shared rounding loop: the gTop-k broadcast root uses it to pre-round
// its own copy under an fp16 wire codec (replica agreement depends on
// it matching the codec's per-value conversion exactly) and
// quant.RoundTripF16 wraps it for the quantizer-family API.
func RoundSlice(xs []float32) {
	for i, v := range xs {
		xs[i] = Round(v)
	}
}
