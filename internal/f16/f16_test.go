package f16

import (
	"math"
	"testing"
)

// TestExhaustiveRoundTrip checks Bits(From(h)) == h for every one of the
// 65536 binary16 bit patterns — the property the fp16 wire codec's
// canonical re-encoding relies on.
func TestExhaustiveRoundTrip(t *testing.T) {
	for h := 0; h <= 0xffff; h++ {
		f := From(uint16(h))
		got := Bits(f)
		if got != uint16(h) {
			t.Fatalf("half %#04x -> %v -> %#04x", h, f, got)
		}
	}
}

// TestKnownConversions pins reference values, including rounding, range
// edges, subnormals and specials.
func TestKnownConversions(t *testing.T) {
	cases := []struct {
		f    float32
		bits uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-2, 0xc000},
		{65504, 0x7bff},         // largest finite half
		{65520, 0x7c00},         // rounds to +Inf (just past the range midpoint)
		{-65520, 0xfc00},        // rounds to -Inf
		{6.1035156e-05, 0x0400}, // smallest normal half (2^-14)
		{5.9604645e-08, 0x0001}, // smallest subnormal half (2^-24)
		{2.9802322e-08, 0x0000}, // 2^-25 ties to even -> zero
		{2.9802326e-08, 0x0001}, // just above 2^-25 rounds up
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
		{0.333251953125, 0x3555}, // 1/3 to the nearest half
	}
	for _, c := range cases {
		if got := Bits(c.f); got != c.bits {
			t.Errorf("Bits(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
	}
	if !math.IsNaN(float64(From(0x7e00))) {
		t.Errorf("From(0x7e00) = %v, want NaN", From(0x7e00))
	}
	if Bits(float32(math.NaN()))&0x7c00 != 0x7c00 || Bits(float32(math.NaN()))&0x3ff == 0 {
		t.Errorf("Bits(NaN) = %#04x is not a NaN encoding", Bits(float32(math.NaN())))
	}
}

// TestRoundToNearestEven checks the tie-breaking rule on exact midpoints
// between adjacent half values.
func TestRoundToNearestEven(t *testing.T) {
	// 1.0 and the next half up 1.0009765625 (0x3c01); midpoint rounds to
	// the even mantissa (0x3c00), just above rounds up.
	mid := float32(1.00048828125)
	if got := Bits(mid); got != 0x3c00 {
		t.Errorf("Bits(midpoint %v) = %#04x, want 0x3c00 (ties to even)", mid, got)
	}
	if got := Bits(math.Nextafter32(mid, 2)); got != 0x3c01 {
		t.Errorf("Bits(just above midpoint) = %#04x, want 0x3c01", got)
	}
	// Midpoint between 0x3c01 and 0x3c02 rounds UP to the even 0x3c02.
	mid2 := float32(1.00146484375)
	if got := Bits(mid2); got != 0x3c02 {
		t.Errorf("Bits(midpoint %v) = %#04x, want 0x3c02 (ties to even)", mid2, got)
	}
}

// TestRelativeErrorBound samples the normal range and asserts the 2^-11
// relative error bound documented for the fp16 wire mode.
func TestRelativeErrorBound(t *testing.T) {
	state := uint64(7)
	for i := 0; i < 100000; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		f := math.Float32frombits(uint32(state))
		a := float64(f)
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) < 6.2e-5 || math.Abs(a) > 65504 {
			continue
		}
		r := float64(Round(f))
		if rel := math.Abs(r-a) / math.Abs(a); rel > 1.0/2048 {
			t.Fatalf("Round(%v) = %v, relative error %v > 2^-11", f, r, rel)
		}
	}
}

// TestRoundIdempotent asserts Round(Round(x)) == Round(x) bitwise.
func TestRoundIdempotent(t *testing.T) {
	state := uint64(11)
	for i := 0; i < 100000; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		f := math.Float32frombits(uint32(state))
		once := Round(f)
		twice := Round(once)
		if math.Float32bits(once) != math.Float32bits(twice) {
			t.Fatalf("Round not idempotent on %v: %x vs %x", f,
				math.Float32bits(once), math.Float32bits(twice))
		}
	}
}
