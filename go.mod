module gtopkssgd

go 1.24
