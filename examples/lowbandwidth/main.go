// Lowbandwidth: the paper's motivating scenario. Sweep worker counts on
// a simulated 1 Gbps Ethernet cluster and print per-iteration
// communication time and scaling efficiency for dense, Top-k and gTop-k
// S-SGD — the Fig. 10 story as a runnable program.
//
// Run with:
//
//	go run ./examples/lowbandwidth
package main

import (
	"fmt"
	"time"

	"gtopkssgd"
)

func main() {
	const (
		m       = 25_000_000 // ResNet-50-sized model
		rho     = 0.001
		compute = 500 * time.Millisecond // forward+backward per iteration
	)
	model := gtopkssgd.Paper1GbE()
	k := gtopkssgd.DensityToK(m, rho)

	fmt.Printf("Model: m=%d parameters, rho=%g (k=%d), network: 1 Gbps Ethernet\n", m, rho, k)
	fmt.Printf("Assumed compute time per iteration: %v\n\n", compute)
	fmt.Printf("%4s  %14s %14s %14s  %8s %8s %8s\n",
		"P", "dense comm", "topk comm", "gtopk comm", "e_dense", "e_topk", "e_gtopk")
	for _, p := range []int{4, 8, 16, 32, 64, 128} {
		dense := model.DenseAllReduce(p, m)
		topk := model.TopKAllReduce(p, k)
		gtopk := model.GTopKAllReduce(p, k)
		eff := func(comm time.Duration) string {
			return fmt.Sprintf("%6.1f%%", 100*float64(compute)/float64(compute+comm))
		}
		fmt.Printf("%4d  %14v %14v %14v  %8s %8s %8s\n",
			p, dense.Round(time.Millisecond), topk.Round(time.Millisecond),
			gtopk.Round(time.Millisecond), eff(dense), eff(topk), eff(gtopk))
	}
	fmt.Println("\ngTop-k's O(k·logP) cost keeps scaling efficiency nearly flat as P grows,")
	fmt.Println("while TopKAllReduce degrades linearly in P and dense AllReduce is")
	fmt.Println("bandwidth-bound from the start — the paper's Fig. 10 in table form.")
}
