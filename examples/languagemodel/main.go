// Languagemodel: the paper's LSTM-PTB experiment (Fig. 7) in miniature —
// train the LSTM language model on a synthetic Markov corpus with dense
// S-SGD and gTop-k (ρ = 0.005) and compare per-epoch perplexity.
//
// Run with:
//
//	go run ./examples/languagemodel
package main

import (
	"context"
	"fmt"
	"log"

	"gtopkssgd"
	"gtopkssgd/internal/data"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/nn"
	"gtopkssgd/internal/nn/models"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		workers = 4
		batch   = 8
		epochs  = 8
		iters   = 15
		density = 0.005 // the paper's LSTM density
	)
	corpus, err := data.NewText(11, 64)
	if err != nil {
		return err
	}

	type curve struct {
		algo string
		ppl  []float64
	}
	var curves []curve
	for _, algo := range []string{"dense", "gtopk"} {
		results, err := gtopkssgd.RunCluster(context.Background(),
			gtopkssgd.ClusterConfig{Workers: workers, Steps: epochs * iters},
			func(rank int, comm *gtopkssgd.Comm) (*gtopkssgd.Trainer, error) {
				m := models.LSTMPTBSim()
				m.Init(42)
				dim := m.ParamCount()
				var agg gtopkssgd.Aggregator
				if algo == "dense" {
					agg = gtopkssgd.NewDenseAggregator(comm, dim)
				} else {
					k := gtopkssgd.DensityToK(dim, density)
					if agg, err = gtopkssgd.NewGTopKAggregator(comm, dim, k); err != nil {
						return nil, err
					}
				}
				return gtopkssgd.NewTrainer(
					gtopkssgd.TrainConfig{LR: 1.0, GradClip: 0.25},
					agg,
					m.Parameters(),
					models.LSTMGradFn(m, corpus, rank, workers, batch, 16),
				)
			})
		if err != nil {
			return err
		}
		epochLoss := metrics.EpochMeans(results[0].Losses, iters)
		ppl := make([]float64, len(epochLoss))
		for i, l := range epochLoss {
			ppl[i] = nn.Perplexity(l)
		}
		curves = append(curves, curve{algo: algo, ppl: ppl})
	}

	fmt.Printf("LSTM-PTB-sim, P=%d, rho=%g: per-epoch perplexity\n\n", workers, density)
	fmt.Printf("%-6s", "epoch")
	for _, c := range curves {
		fmt.Printf("  %10s", c.algo)
	}
	fmt.Println()
	for e := 0; e < epochs; e++ {
		fmt.Printf("%-6d", e+1)
		for _, c := range curves {
			fmt.Printf("  %10.2f", c.ppl[e])
		}
		fmt.Println()
	}
	fmt.Println("\ngTop-k tracks dense perplexity at 0.5% gradient density (paper Fig. 7).")
	return nil
}
