// Quickstart: train a small classifier with gTop-k S-SGD on four
// simulated workers and compare the final loss to dense S-SGD.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"gtopkssgd"
	"gtopkssgd/internal/data"
	"gtopkssgd/internal/nn/models"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		workers = 4
		batch   = 16
		steps   = 120
		density = 0.01
	)
	ds, err := data.NewImages(7, 10, 3, 8, 8, 0.4)
	if err != nil {
		return err
	}

	for _, algo := range []string{"dense", "gtopk"} {
		results, err := gtopkssgd.RunCluster(context.Background(),
			gtopkssgd.ClusterConfig{Workers: workers, Steps: steps},
			func(rank int, comm *gtopkssgd.Comm) (*gtopkssgd.Trainer, error) {
				// Every worker builds the same model with the same seed so
				// replicas start identical.
				cls := models.MLP(ds.Dim(), 64, 10)
				cls.Net.Init(42)
				dim := cls.Net.ParamCount()

				var agg gtopkssgd.Aggregator
				if algo == "dense" {
					agg = gtopkssgd.NewDenseAggregator(comm, dim)
				} else {
					k := gtopkssgd.DensityToK(dim, density)
					// A local err: the closure runs concurrently on every
					// rank, so it must not write the captured outer err.
					ga, err := gtopkssgd.NewGTopKAggregator(comm, dim, k)
					if err != nil {
						return nil, err
					}
					agg = ga
				}
				return gtopkssgd.NewTrainer(
					gtopkssgd.TrainConfig{LR: 0.1, Momentum: 0.9},
					agg,
					cls.Net.Parameters(),
					models.GradFn(cls, ds, rank, workers, batch),
				)
			})
		if err != nil {
			return err
		}
		losses := results[0].Losses
		fmt.Printf("%-6s  first loss %.4f  final loss %.4f  (sent %.1f KiB/worker)\n",
			algo, losses[0], losses[len(losses)-1],
			float64(results[0].CommStats.BytesSent)/1024)
	}
	fmt.Println("\ngTop-k reaches a comparable loss while communicating a fraction of the bytes.")
	return nil
}
