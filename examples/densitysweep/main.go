// Densitysweep: reproduce the paper's Fig. 12 sensitivity study — how the
// gradient density ρ affects gTop-k convergence — on the CPU-scaled
// ResNet-20 analogue with four workers.
//
// Run with:
//
//	go run ./examples/densitysweep
package main

import (
	"context"
	"fmt"
	"log"

	"gtopkssgd/internal/bench"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	densities := []float64{0.01, 0.001, 0.0005, 0.0001}
	fmt.Println("gTop-k convergence vs density (resnet20sim, P=4, 8 epochs)")
	fmt.Println()

	var curves []*bench.TrainCurve
	for _, rho := range densities {
		spec := bench.TrainSpec{
			Model: "resnet20sim", Algo: "gtopk",
			Workers: 4, Batch: 16,
			Epochs: 8, ItersPerEpoch: 15,
			Density: rho,
			LR:      0.05, Momentum: 0.9,
			Seed: 42,
		}
		curve, err := bench.RunTraining(context.Background(), spec)
		if err != nil {
			return err
		}
		curve.Spec.Algo = fmt.Sprintf("rho=%g", rho)
		curves = append(curves, curve)
	}
	fmt.Println(bench.CurveTable("training loss per epoch", curves))
	fmt.Println("Lower densities trade convergence speed for bandwidth; very low rho")
	fmt.Println("still converges thanks to error-feedback residual accumulation.")
	return nil
}
