// Faulttolerant: checkpointed distributed training. Trains gTop-k S-SGD
// for a first segment, snapshots every rank's full state (weights,
// momentum, error-feedback residual) through the checkpoint codec,
// "crashes", then resumes in fresh trainers — and proves the resumed run
// is bit-identical to an uninterrupted one.
//
// Run with:
//
//	go run ./examples/faulttolerant
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gtopkssgd"
	"gtopkssgd/internal/data"
	"gtopkssgd/internal/nn/models"
)

const (
	workers = 4
	batch   = 8
	segment = 40 // steps per segment
	density = 0.01
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "gtopk-ckpt")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort cleanup

	ds, err := data.NewImages(3, 10, 3, 8, 8, 0.4)
	if err != nil {
		return err
	}

	// Reference: uninterrupted 2-segment run.
	ref, err := trainSegments(ds, 2*segment, nil, "")
	if err != nil {
		return err
	}

	// Interrupted run: segment 1, checkpoint, "crash", resume segment 2.
	fmt.Println("segment 1: training", segment, "steps …")
	if _, err := trainSegments(ds, segment, nil, dir); err != nil {
		return err
	}
	fmt.Println("crash! … resuming from checkpoints")
	resumed, err := trainSegments(ds, segment, loadAll(dir), "")
	if err != nil {
		return err
	}

	for i := range ref {
		if ref[i] != resumed[i] {
			return fmt.Errorf("weight %d differs: uninterrupted %v, resumed %v", i, ref[i], resumed[i])
		}
	}
	fmt.Println("resumed weights are BIT-IDENTICAL to the uninterrupted run —")
	fmt.Println("the error-feedback residual is part of the optimizer state and survives restarts.")
	return nil
}

// trainSegments runs one training segment; if ckptDir is non-empty every
// rank saves its state there, and if restore is non-nil ranks resume
// from it. Returns rank 0's final weights.
func trainSegments(ds *data.Images, steps int,
	restore func(rank int) *gtopkssgd.CheckpointState, ckptDir string) ([]float32, error) {

	type rankState struct {
		cls *models.Classifier
		agg gtopkssgd.Aggregator
		tr  *gtopkssgd.Trainer
	}
	states := make([]*rankState, workers)

	results, err := gtopkssgd.RunCluster(context.Background(),
		gtopkssgd.ClusterConfig{Workers: workers, Steps: steps},
		func(rank int, comm *gtopkssgd.Comm) (*gtopkssgd.Trainer, error) {
			cls := models.MLP(ds.Dim(), 48, 10)
			cls.Net.Init(7)
			dim := cls.Net.ParamCount()
			k := gtopkssgd.DensityToK(dim, density)
			agg, err := gtopkssgd.NewGTopKAggregator(comm, dim, k)
			if err != nil {
				return nil, err
			}
			tr, err := gtopkssgd.NewTrainer(
				gtopkssgd.TrainConfig{LR: 0.05, Momentum: 0.9},
				agg, cls.Net.Parameters(),
				models.GradFn(cls, ds, rank, workers, batch))
			if err != nil {
				return nil, err
			}
			if restore != nil {
				st := restore(rank)
				copy(cls.Net.Parameters(), st.Weights)
				if err := tr.Restore(int(st.Iter), st.Velocity); err != nil {
					return nil, err
				}
				type hasSparsifier interface{ Sparsifier() *gtopkssgd.Sparsifier }
				if hs, ok := agg.(hasSparsifier); ok {
					if err := hs.Sparsifier().RestoreResidual(st.Residual); err != nil {
						return nil, err
					}
				}
			}
			states[rank] = &rankState{cls: cls, agg: agg, tr: tr}
			return tr, nil
		})
	if err != nil {
		return nil, err
	}

	if ckptDir != "" {
		for rank, st := range states {
			type hasSparsifier interface{ Sparsifier() *gtopkssgd.Sparsifier }
			snap := &gtopkssgd.CheckpointState{
				Iter:     uint64(st.tr.Iter()),
				Weights:  st.cls.Net.Parameters(),
				Velocity: st.tr.Velocity(),
				Meta:     map[string]string{"rank": fmt.Sprint(rank)},
			}
			if hs, ok := st.agg.(hasSparsifier); ok {
				snap.Residual = hs.Sparsifier().Residual()
			}
			path := filepath.Join(ckptDir, fmt.Sprintf("rank%d.ckpt", rank))
			if err := gtopkssgd.SaveCheckpoint(path, snap); err != nil {
				return nil, err
			}
		}
	}
	return results[0].FinalWeights, nil
}

// loadAll returns a per-rank loader over the checkpoint directory.
func loadAll(dir string) func(rank int) *gtopkssgd.CheckpointState {
	return func(rank int) *gtopkssgd.CheckpointState {
		st, err := gtopkssgd.LoadCheckpoint(filepath.Join(dir, fmt.Sprintf("rank%d.ckpt", rank)))
		if err != nil {
			log.Fatalf("load rank %d: %v", rank, err)
		}
		return st
	}
}
