// Overlap: bucketed gTop-k aggregation with communication/computation
// overlap. Four simulated workers train the same classifier twice —
// once with the serialized single-bucket gTop-k aggregator, once with
// the bucketed pipeline (layer-aligned buckets on tag-isolated
// sub-communicators, buckets handed off mid-backward-pass) — and the
// α-β simulated clocks show what the overlap saves on a 1 GbE network.
//
// Run with:
//
//	go run ./examples/overlap
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gtopkssgd"
	"gtopkssgd/internal/data"
	"gtopkssgd/internal/nn"
	"gtopkssgd/internal/nn/models"
)

// deepMLP builds a four-hidden-layer perceptron so the bucketed pipeline
// has four parameterised layers to bucket (models.MLP has only two).
func deepMLP(in, classes int) *models.Classifier {
	net := nn.NewNetwork(
		nn.NewDense(in, 128), nn.NewReLU(),
		nn.NewDense(128, 96), nn.NewReLU(),
		nn.NewDense(96, 64), nn.NewReLU(),
		nn.NewDense(64, classes),
	)
	return &models.Classifier{Name: "mlp4", Net: net, C: 1, H: 1, W: in, Classes: classes}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		workers = 4
		batch   = 16
		steps   = 60
		density = 0.01
		buckets = 4
	)
	ds, err := data.NewImages(7, 10, 3, 8, 8, 0.4)
	if err != nil {
		return err
	}
	model := gtopkssgd.Paper1GbE()

	for _, mode := range []string{"serialized", "overlapped"} {
		var rank0 *gtopkssgd.BucketedAggregator
		results, err := gtopkssgd.RunCluster(context.Background(),
			gtopkssgd.ClusterConfig{Workers: workers, Steps: steps, Model: &model},
			func(rank int, comm *gtopkssgd.Comm) (*gtopkssgd.Trainer, error) {
				cls := deepMLP(ds.Dim(), 10)
				cls.Net.Init(42)
				dim := cls.Net.ParamCount()

				var agg gtopkssgd.Aggregator
				if mode == "serialized" {
					k := gtopkssgd.DensityToK(dim, density)
					ga, err := gtopkssgd.NewGTopKAggregator(comm, dim, k)
					if err != nil {
						return nil, err
					}
					agg = ga
				} else {
					bounds := gtopkssgd.GroupBounds(cls.Net.LayerBounds(), buckets)
					ba, err := gtopkssgd.NewBucketedAggregator(comm, bounds, density)
					if err != nil {
						return nil, err
					}
					if rank == 0 {
						rank0 = ba
					}
					agg = ba
				}
				tr, err := gtopkssgd.NewTrainer(
					gtopkssgd.TrainConfig{LR: 0.05, GradClip: 1},
					agg,
					cls.Net.Parameters(),
					models.GradFn(cls, ds, rank, workers, batch),
				)
				if err != nil {
					return nil, err
				}
				if mode == "overlapped" {
					// The streaming gradient function announces each layer's
					// range as the backward pass retires it (tail first), so
					// bucket collectives start while earlier layers still
					// compute.
					if err := tr.SetStreamGradFn(models.StreamGradFn(cls, ds, rank, workers, batch)); err != nil {
						return nil, err
					}
				}
				return tr, nil
			})
		if err != nil {
			return err
		}
		losses := results[0].Losses
		fmt.Printf("%-10s  loss %.4f -> %.4f  sim comm/iter %-12v  sent %.1f KiB/worker\n",
			mode, losses[0], losses[len(losses)-1],
			results[0].SimulatedTime/time.Duration(steps),
			float64(results[0].CommStats.BytesSent)/1024)
		if rank0 != nil {
			times := rank0.LastBucketTimes()
			var sum, slowest time.Duration
			for _, d := range times {
				sum += d
				if d > slowest {
					slowest = d
				}
			}
			fmt.Printf("%-10s  per-bucket comm %v\n", "", times)
			fmt.Printf("%-10s  slowest bucket %v vs serialized sum %v (%.2fx from overlap)\n",
				"", slowest, sum, float64(sum)/float64(slowest))
		}
	}
	fmt.Println("\nThe bucketed pipeline pays only the slowest bucket per iteration;")
	fmt.Println("the serialized aggregator pays the full collective after the backward pass.")
	return nil
}
