// Paramserver: the paper's footnote-2 extension — gTop-k under a
// parameter-server topology — compared head-to-head with the tree
// collective: identical selections, different communication scaling.
//
// Run with:
//
//	go run ./examples/paramserver
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"gtopkssgd"
	"gtopkssgd/internal/prng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		workers = 8
		dim     = 50_000
		rho     = 0.001
	)
	k := gtopkssgd.DensityToK(dim, rho)
	fmt.Printf("gTop-k via tree vs parameter-server star: P=%d, m=%d, k=%d\n\n", workers, dim, k)

	// Build per-worker sparse gradients.
	locals := make([]*gtopkssgd.Vector, workers)
	for r := range locals {
		src := prng.New(uint64(100 + r))
		g := make([]float32, dim)
		for i := range g {
			g[i] = float32(src.NormFloat64())
		}
		locals[r] = gtopkssgd.TopKSelect(g, k)
	}

	for _, mode := range []string{"tree", "ps-star"} {
		fabric, err := gtopkssgd.NewInProcFabric(workers)
		if err != nil {
			return err
		}
		var (
			wg      sync.WaitGroup
			results = make([]*gtopkssgd.Vector, workers)
			errs    = make([]error, workers)
		)
		for r := 0; r < workers; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				comm := gtopkssgd.NewComm(fabric.Conn(rank))
				var out *gtopkssgd.Vector
				var err error
				if mode == "tree" {
					out, err = gtopkssgd.GTopKAllReduce(context.Background(), comm, locals[rank].Clone(), k)
				} else {
					out, err = gtopkssgd.PSGTopKAllReduce(context.Background(), comm, locals[rank].Clone(), k)
				}
				results[rank], errs[rank] = out, err
			}(r)
		}
		wg.Wait()
		fabric.Close() //nolint:errcheck // in-process close never fails
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		fmt.Printf("%-8s  global selection: %d coordinates, |G|_1 of kept values = %.2f\n",
			mode, results[0].NNZ(), l1(results[0]))
	}

	// Communication scaling (paper Eq. 7 vs star cost).
	model := gtopkssgd.Paper1GbE()
	fmt.Println("\nModelled 1GbE communication time (k = 25e3, m = 25e6):")
	bigK := 25_000
	for _, p := range []int{4, 16, 64} {
		tree := model.GTopKAllReduce(p, bigK)
		star := time.Duration(2*(p-1)) * model.PointToPoint(2*bigK)
		fmt.Printf("  P=%-3d  tree %-12v star %v\n", p, tree, star)
	}
	fmt.Println("\nThe star's server link serialises O(P) sparse messages; the tree needs")
	fmt.Println("only O(logP) rounds — why the paper targets decentralized AllReduce.")
	return nil
}

func l1(v *gtopkssgd.Vector) float64 {
	var s float64
	for _, x := range v.Values {
		if x < 0 {
			x = -x
		}
		s += float64(x)
	}
	return s
}
