// Package gtopkssgd is a from-scratch Go reproduction of
//
//	Shi et al., "A Distributed Synchronous SGD Algorithm with Global
//	Top-k Sparsification for Low Bandwidth Networks", ICDCS 2019.
//
// It provides the paper's gTop-k gradient sparsification and the
// gTopKAllReduce collective (O(k·logP) communication), the baselines it
// is evaluated against (dense ring AllReduce, AllGather-based
// TopKAllReduce), a deterministic message-passing substrate (in-process
// and TCP fabrics), an α-β network cost model for low-bandwidth-network
// timing, and a compact neural-network training stack used by the
// convergence experiments.
//
// This file is the public facade: it re-exports the stable surface of
// the internal packages so downstream users interact with a single
// import. See README.md for a walkthrough and the examples/ directory
// for runnable programs.
//
// # Quick start
//
//	fabric, _ := gtopkssgd.NewInProcFabric(4)
//	defer fabric.Close()
//	results, err := gtopkssgd.RunCluster(ctx, gtopkssgd.ClusterConfig{
//		Workers: 4, Steps: 100,
//	}, func(rank int, comm *gtopkssgd.Comm) (*gtopkssgd.Trainer, error) {
//		agg, _ := gtopkssgd.NewGTopKAggregator(comm, dim, gtopkssgd.DensityToK(dim, 0.001))
//		return gtopkssgd.NewTrainer(gtopkssgd.TrainConfig{LR: 0.1, Momentum: 0.9},
//			agg, weights, gradFn)
//	})
package gtopkssgd

import (
	"context"

	"gtopkssgd/internal/checkpoint"
	"gtopkssgd/internal/cluster"
	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/quant"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/trace"
	"gtopkssgd/internal/transport"
)

// Re-exported types. Aliases keep the internal packages as the single
// source of truth while making the whole training surface reachable from
// one import path.
type (
	// Vector is a sparse gradient slice: parallel (Indices, Values)
	// arrays over a dense dimension.
	Vector = sparse.Vector

	// Conn is one rank's endpoint into a message-passing fabric.
	Conn = transport.Conn
	// Fabric is a connected set of rank endpoints.
	Fabric = transport.Fabric

	// Comm is a rank communicator providing MPI-style collectives.
	Comm = collective.Comm
	// CommStats counts messages, bytes and rounds per rank.
	CommStats = collective.Stats

	// NetModel is the α-β communication cost model.
	NetModel = netsim.Model
	// Clock accumulates simulated communication time for one worker.
	Clock = netsim.Clock

	// Aggregator converts a local dense gradient into the replicated
	// global update (the algorithm under study).
	Aggregator = core.Aggregator
	// Sparsifier owns a worker's error-feedback residual.
	Sparsifier = core.Sparsifier
	// GradFn computes a worker's mini-batch gradient.
	GradFn = core.GradFn
	// TrainConfig holds SGD hyper-parameters.
	TrainConfig = core.TrainConfig
	// Trainer drives one worker's S-SGD loop.
	Trainer = core.Trainer
	// ClusterConfig describes a simulated training cluster.
	ClusterConfig = core.ClusterConfig
	// WorkerResult is one rank's training telemetry.
	WorkerResult = core.WorkerResult
	// WorkerSetup builds a rank's trainer inside its goroutine.
	WorkerSetup = core.WorkerSetup
	// PipelinedTrainer overlaps communication with computation
	// (one-step-stale updates; the paper's future-work pipelining).
	PipelinedTrainer = core.PipelinedTrainer
	// StreamGradFn computes a gradient and announces per-layer readiness,
	// enabling same-step communication/computation overlap.
	StreamGradFn = core.StreamGradFn
	// BucketStreamer is the streaming aggregation contract implemented by
	// BucketedAggregator (Begin / Ready / Finish per iteration).
	BucketStreamer = core.BucketStreamer
	// GroupComms is the member/leader communicator pair of a group
	// hierarchy (Comm.ForkGroup) — what HierarchicalGTopKAllReduce runs
	// over.
	GroupComms = collective.GroupComms
	// HierarchicalAggregator runs gTop-k S-SGD over the two-level
	// hierarchical collective: intra-group gTop-k, a leader-level
	// exchange across groups, and a broadcast back down.
	HierarchicalAggregator = core.HierarchicalAggregator

	// BucketedAggregator runs gTop-k per layer-aligned bucket with
	// bucket collectives overlapping each other and the backward pass.
	BucketedAggregator = core.BucketedAggregator
	// PhaseTimes carries per-iteration phase durations to observers.
	PhaseTimes = core.PhaseTimes

	// CheckpointState snapshots one worker's full training state.
	CheckpointState = checkpoint.State
	// TraceRecorder accumulates per-iteration phase timings.
	TraceRecorder = trace.Recorder

	// ClusterCoordinator is the rendezvous/membership service of an
	// elastic job (workers join by name, failures declare new epochs).
	ClusterCoordinator = cluster.Coordinator
	// ClusterCoordinatorConfig parameterises a ClusterCoordinator.
	ClusterCoordinatorConfig = cluster.CoordinatorConfig
	// ElasticWorkerConfig parameterises one elastic worker; see
	// RunElasticWorker.
	ElasticWorkerConfig = cluster.RuntimeConfig
	// ElasticWorkerResult summarises a completed elastic training run.
	ElasticWorkerResult = cluster.RunResult
	// ElasticSession is one epoch's training assembly, produced by an
	// ElasticWorkerConfig.Build function.
	ElasticSession = cluster.Session

	// QuorumConfig switches gTop-k rounds to straggler-tolerant quorum
	// mode: a round's gather closes after Q of P contributions under a
	// per-round deadline, and a straggler's block is refunded to its
	// error-feedback residual (GTopKAggregator.SetQuorum).
	QuorumConfig = core.QuorumConfig
	// FaultPlan is a seeded, deterministic schedule of link-level
	// faults (delay, jitter, stalls, drops) for a FaultInjector.
	FaultPlan = transport.FaultPlan
	// FaultInjector wraps any Fabric with a FaultPlan, making
	// straggler schedules reproducible in tests and benchmarks.
	FaultInjector = transport.FaultInjector
	// LinkModel prices heterogeneous topologies: intra-group and
	// inter-group α-β models with a rank→group mapping
	// (Comm.WithLinks).
	LinkModel = netsim.LinkModel
)

// NewInProcFabric connects n ranks through in-memory mailboxes — the
// default substrate for simulated clusters (deterministic, race-free).
func NewInProcFabric(n int) (Fabric, error) { return transport.NewInProc(n) }

// NewTCPFabric connects n ranks through a loopback TCP mesh,
// demonstrating the collectives over a real network stack.
func NewTCPFabric(n int) (Fabric, error) { return transport.NewTCP(n) }

// NewComm wraps a fabric endpoint in a communicator.
func NewComm(conn Conn) *Comm { return collective.New(conn) }

// Paper1GbE returns the α-β model with the constants the paper measured
// on its 1 Gbps Ethernet cluster (α = 0.436 ms, β = 3.6e-5 ms/element).
func Paper1GbE() NetModel { return netsim.Paper1GbE() }

// NewFaultInjector wraps a fabric with a seeded link-level fault plan.
func NewFaultInjector(inner Fabric, plan FaultPlan) *FaultInjector {
	return transport.NewFaultInjector(inner, plan)
}

// NewLinkModel builds a heterogeneous per-link α-β model: ranks in the
// same group of groupSize pay intra, ranks across groups pay inter.
func NewLinkModel(intra, inter NetModel, groupSize int) (*LinkModel, error) {
	return netsim.NewLinkModel(intra, inter, groupSize)
}

// QuorumMin returns the smallest legal quorum for a P-rank world — a
// strict majority, so two disjoint quorums can never close the same
// round with different participant sets.
func QuorumMin(p int) int { return core.QuorumMin(p) }

// TopKSelect returns the k largest-magnitude entries of x with
// deterministic tie-breaking (lowest index wins), the local selection
// primitive of all sparsified algorithms.
func TopKSelect(x []float32, k int) *Vector { return sparse.TopK(x, k) }

// Merge is the paper's Definition 1 ⊕ operator: the top-k entries of the
// element-wise sum of two sparse vectors.
func Merge(a, b *Vector, k int) (*Vector, error) { return sparse.Merge(a, b, k) }

// MergeInto is the allocation-free ⊕: the result lands in dst (capacity
// reused), with the intermediate sum in pooled scratch. See
// sparse.MergeInto.
func MergeInto(dst, a, b *Vector, k int) error { return sparse.MergeInto(dst, a, b, k) }

// DecodeView parses the sparse wire format without copying: the returned
// vector aliases the frame until it is released. See sparse.DecodeView
// for the ownership rules.
func DecodeView(buf []byte) (Vector, error) { return sparse.DecodeView(buf) }

// Codec selects the sparse wire encoding: CodecV1 (legacy flat frames),
// CodecV2 (sorted-index delta/varint, lossless) or CodecV2F16 (delta/
// varint indices with half-precision values). Meshes negotiate the wire
// version in their handshake and settle on the minimum any member
// offers; Comm.WireCodec reports the effective codec.
type Codec = sparse.Codec

// The wire codecs (see Codec).
const (
	// CodecV1 is the flat 8-bytes-per-entry legacy wire format.
	CodecV1 = sparse.CodecV1
	// CodecV2 is the delta/varint wire format with lossless fp32 values.
	CodecV2 = sparse.CodecV2
	// CodecV2F16 is the delta/varint wire format with binary16 values.
	CodecV2F16 = sparse.CodecV2F16
	// CodecV3 is the compound wire format with lossless fp32 values.
	CodecV3 = sparse.CodecV3
	// CodecV3F16 is the compound wire format with binary16 values.
	CodecV3F16 = sparse.CodecV3F16
	// CodecV3Q8 is the compound wire format with QSGD 8-bit values.
	CodecV3Q8 = sparse.CodecV3Q8
	// CodecV3Q4 is the compound wire format with QSGD 4-bit values.
	CodecV3Q4 = sparse.CodecV3Q4
	// CodecV3Q2 is the compound wire format with QSGD 2-bit values.
	CodecV3Q2 = sparse.CodecV3Q2
	// CodecV3T is the compound wire format with ternary values.
	CodecV3T = sparse.CodecV3T
	// CodecV3S is the compound wire format with 1-bit sign values.
	CodecV3S = sparse.CodecV3S
)

// ParseCodec parses the -wire flag spellings: v1, v2, v2-fp16, v3, or
// v3-<value> for any ParseValueCodec spelling except fp32.
func ParseCodec(s string) (Codec, error) { return sparse.ParseCodec(s) }

// ValueCodec names the value-stream treatment of a compound (v3) codec:
// how the selected gradient values are transformed and packed after
// top-k selection picks the support.
type ValueCodec = sparse.ValueCodec

// ParseValueCodec parses the -value-codec flag spellings: fp32, fp16,
// qsgd8, qsgd4, qsgd2, ternary, sign.
func ParseValueCodec(s string) (ValueCodec, error) { return sparse.ParseValueCodec(s) }

// CodecForWireValue resolves a negotiated wire version plus a value
// codec preference into the effective codec, degrading lossy
// preferences losslessly on pre-v3 meshes.
func CodecForWireValue(version byte, vc ValueCodec) Codec {
	return sparse.CodecForWireValue(version, vc)
}

// Compressor is the pluggable select→transform→encode value-stream
// stage of the compound pipeline: it maps a hop's selected values onto
// its quantization lattice (mutating them in place so the sender's copy
// matches what every receiver decodes) and reports the levels to encode.
// Install one with Comm.SetCompressor; quantization error belongs in
// the error-feedback residual (Sparsifier.FoldError), which the
// aggregators wire up automatically.
type Compressor = sparse.Compressor

// NewCompressor builds the standard Compressor stack for a value codec
// (stochastic QSGD rounding, Bernoulli ternary, deterministic sign).
// Fork rank-distinct streams off one seeded stack rather than mixing
// the rank into the seed.
func NewCompressor(vc ValueCodec, seed uint64) Compressor { return quant.NewStack(vc, seed) }

// DensityController adapts a bucket's selection count toward a
// wire-byte budget (DGC-style): feed it replica-agreed per-round byte
// observations and read the seeded, deterministic k schedule back. The
// bucketed aggregator embeds one per bucket via SetAdaptiveDensity.
type DensityController = core.DensityController

// NewDensityController creates a density controller starting at k0,
// clamped to [kMin, kMax], steering toward budgetBytes per round.
func NewDensityController(k0, kMin, kMax int, budgetBytes int64, seed uint64) (*DensityController, error) {
	return core.NewDensityController(k0, kMin, kMax, budgetBytes, seed)
}

// ShardSelector is the parallel sharded top-k selection engine: the
// dense gradient splits into per-core shards, each runs the threshold
// quickselect concurrently, and the shard winners merge into the exact
// global top-k — bit-identical to serial selection for every shard
// count. Sparsifier.SetShards wires it into the training loop.
type ShardSelector = sparse.ShardSelector

// NewShardSelector creates a selection engine with the given shard count
// (shards < 1 selects one shard per schedulable core).
func NewShardSelector(shards int) *ShardSelector { return sparse.NewShardSelector(shards) }

// WireTally accumulates raw-vs-encoded wire-byte counters for the sparse
// frames a communicator sends (attach with Comm.SetWireTally), making
// codec compression observable in real runs.
type WireTally = metrics.WireTally

// WireCounters is one consistent reading of a WireTally.
type WireCounters = metrics.WireCounters

// DensityToK converts a density ρ into the selection count k = ρ·m,
// clamped to [1, dim].
func DensityToK(dim int, density float64) int { return core.DensityToK(dim, density) }

// NewSparsifier creates an error-feedback sparsifier for a dim-parameter
// model.
func NewSparsifier(dim int) *Sparsifier { return core.NewSparsifier(dim) }

// GTopKAllReduce runs the paper's Algorithm 3: tree-reduce the workers'
// sparse vectors with ⊕ and broadcast the global top-k, in 2·log2(P)
// rounds. Requires power-of-two worker counts.
func GTopKAllReduce(ctx context.Context, comm *Comm, local *Vector, k int) (*Vector, error) {
	return core.GTopKAllReduce(ctx, comm, local, k)
}

// GTopKAllReduceInto is the zero-allocation form of GTopKAllReduce: the
// result lands in out (capacity reused across iterations) and each tree
// round's payload is pipelined as `chunks` frames. Every rank must pass
// the same chunks value; the result bits do not depend on it.
func GTopKAllReduceInto(ctx context.Context, comm *Comm, local *Vector, k, chunks int, out *Vector) error {
	return core.GTopKAllReduceInto(ctx, comm, local, k, chunks, out)
}

// TopKAllReduce runs the AllGather-based sparse aggregation baseline
// (Algorithm 1 lines 12-21), returning the exact sum over the union
// support.
func TopKAllReduce(ctx context.Context, comm *Comm, local *Vector) (*Vector, error) {
	return core.TopKAllReduce(ctx, comm, local)
}

// NaiveGTopKAllReduce computes the exact global top-k of the sum via
// AllGather (Algorithm 2) — the reference the tree is verified against.
func NaiveGTopKAllReduce(ctx context.Context, comm *Comm, local *Vector, k int) (*Vector, error) {
	return core.NaiveGTopKAllReduce(ctx, comm, local, k)
}

// HierarchicalGTopKAllReduce runs the two-level hierarchical gTop-k for
// large worlds: groups of g ranks aggregate internally with the tree
// collective, group leaders run a second gTop-k over the g-fold smaller
// leader world, and the global top-k broadcasts back down through the
// leaders. g <= 1 or g >= world is bit-identical to GTopKAllReduce.
func HierarchicalGTopKAllReduce(ctx context.Context, comm *Comm, local *Vector, k, g int) (*Vector, error) {
	return core.HierarchicalGTopKAllReduce(ctx, comm, local, k, g)
}

// PSGTopKAllReduce computes the global top-k through a parameter-server
// star topology (works for any P; scales worse than the tree).
func PSGTopKAllReduce(ctx context.Context, comm *Comm, local *Vector, k int) (*Vector, error) {
	return core.PSGTopKAllReduce(ctx, comm, local, k)
}

// NewDenseAggregator builds classic S-SGD aggregation (ring AllReduce of
// the full gradient).
func NewDenseAggregator(comm *Comm, dim int) Aggregator {
	return core.NewDenseAggregator(comm, dim)
}

// NewTopKAggregator builds Top-k S-SGD aggregation (Algorithm 1).
func NewTopKAggregator(comm *Comm, dim, k int) (Aggregator, error) {
	agg, err := core.NewTopKAggregator(comm, dim, k)
	if err != nil {
		return nil, err
	}
	return agg, nil
}

// NewGTopKAggregator builds gTop-k S-SGD aggregation (Algorithm 4, tree
// based), the paper's contribution.
func NewGTopKAggregator(comm *Comm, dim, k int) (Aggregator, error) {
	agg, err := core.NewGTopKAggregator(comm, dim, k)
	if err != nil {
		return nil, err
	}
	return agg, nil
}

// NewPSGTopKAggregator builds the parameter-server-mode gTop-k extension.
func NewPSGTopKAggregator(comm *Comm, dim, k int) (Aggregator, error) {
	agg, err := core.NewPSGTopKAggregator(comm, dim, k)
	if err != nil {
		return nil, err
	}
	return agg, nil
}

// NewBucketedAggregator builds the bucketed, overlapped gTop-k pipeline:
// each bucket (cumulative offsets in bounds) selects density·size of its
// gradients and aggregates them via GTopKAllReduce on a tag-isolated
// sub-communicator, concurrently with the other buckets. Install a
// StreamGradFn on the trainer to also overlap with the backward pass.
func NewBucketedAggregator(comm *Comm, bounds []int, density float64) (*BucketedAggregator, error) {
	return core.NewBucketedAggregator(comm, bounds, density)
}

// NewHierarchicalAggregator builds a gTop-k aggregator whose global
// exchange runs the two-level hierarchical collective over groups of
// `group` ranks (see HierarchicalGTopKAllReduce). Replica updates stay
// bit-identical across ranks; group >= world degenerates to
// NewGTopKAggregator, bit for bit.
func NewHierarchicalAggregator(comm *Comm, dim, k, group int) (*HierarchicalAggregator, error) {
	return core.NewHierarchicalAggregator(comm, dim, k, group)
}

// NewHierarchicalBucketedAggregator is NewBucketedAggregator with every
// bucket's collective replaced by the two-level hierarchical gTop-k
// over groups of `group` ranks.
func NewHierarchicalBucketedAggregator(comm *Comm, bounds []int, density float64, group int) (*BucketedAggregator, error) {
	return core.NewHierarchicalBucketedAggregator(comm, bounds, density, group)
}

// GroupBounds coalesces per-layer cumulative offsets into at most n
// bucket bounds of roughly equal parameter mass (for NewBucketedAggregator).
func GroupBounds(layerBounds []int, n int) []int { return core.GroupBounds(layerBounds, n) }

// NewLayerwiseGTopKAggregator builds the layer-wise gTop-k extension;
// bounds are cumulative per-layer parameter offsets.
func NewLayerwiseGTopKAggregator(comm *Comm, bounds []int, density float64) (Aggregator, error) {
	agg, err := core.NewLayerwiseGTopKAggregator(comm, bounds, density)
	if err != nil {
		return nil, err
	}
	return agg, nil
}

// NewTrainer assembles a worker's S-SGD loop; weights must be identically
// initialised on every rank.
func NewTrainer(cfg TrainConfig, agg Aggregator, weights []float32, gradFn GradFn) (*Trainer, error) {
	return core.NewTrainer(cfg, agg, weights, gradFn)
}

// NewPipelinedTrainer assembles the communication/computation-overlapped
// trainer (one-step-stale updates); call Flush after the final Step.
func NewPipelinedTrainer(cfg TrainConfig, agg Aggregator, weights []float32, gradFn GradFn) (*PipelinedTrainer, error) {
	return core.NewPipelinedTrainer(cfg, agg, weights, gradFn)
}

// RunCluster spawns the configured number of goroutine workers and runs
// synchronous training, returning per-rank results.
func RunCluster(ctx context.Context, cfg ClusterConfig, setup WorkerSetup) ([]*WorkerResult, error) {
	return core.RunCluster(ctx, cfg, setup)
}

// NewTCPWorker joins a MULTI-PROCESS TCP fabric as one rank; every
// worker process passes its own rank and the shared address list. See
// cmd/gtopk-worker for a complete deployment example.
func NewTCPWorker(ctx context.Context, rank int, addrs []string) (Conn, error) {
	return transport.NewTCPWorker(ctx, rank, addrs)
}

// NewClusterCoordinator creates the rendezvous/membership service of an
// elastic multi-process job; serve it with Coordinator.Serve. Workers
// join with RunElasticWorker (or cluster.Join for just the control
// plane). See cmd/gtopk-coordinator.
func NewClusterCoordinator(cfg ClusterCoordinatorConfig) (*ClusterCoordinator, error) {
	return cluster.NewCoordinator(cfg)
}

// RunElasticWorker executes one elastic worker from join to job
// completion: it rendezvouses through the coordinator, survives
// membership changes by rebuilding the mesh each epoch, and resumes
// from its checkpoint after failures. See cmd/gtopk-worker's elastic
// mode and docs/ARCHITECTURE.md.
func RunElasticWorker(ctx context.Context, cfg ElasticWorkerConfig) (*ElasticWorkerResult, error) {
	return cluster.Run(ctx, cfg)
}

// NewSignSGDAggregator builds the signSGD-with-majority-vote baseline
// (1 bit per gradient, the quantization-family ceiling).
func NewSignSGDAggregator(comm *Comm, dim int) Aggregator {
	return quant.NewSignSGDAggregator(comm, dim)
}

// NewTernGradAggregator builds the TernGrad baseline (unbiased ternary
// quantization). seed must be shared across runs but ranks derive
// independent streams from it.
func NewTernGradAggregator(comm *Comm, dim int, seed uint64) Aggregator {
	return quant.NewTernGradAggregator(comm, dim, seed)
}

// NewQuantizedGTopKAggregator builds the combined compressor: gTop-k
// sparsification with 8-bit quantized values (DGC-style).
func NewQuantizedGTopKAggregator(comm *Comm, dim, k int, seed uint64) (Aggregator, error) {
	agg, err := quant.NewQuantizedGTopKAggregator(comm, dim, k, seed)
	if err != nil {
		return nil, err
	}
	return agg, nil
}

// SaveCheckpoint atomically persists a training-state snapshot to path.
func SaveCheckpoint(path string, s *CheckpointState) error {
	return checkpoint.SaveFile(path, s)
}

// LoadCheckpoint reads a training-state snapshot from path, validating
// its checksum.
func LoadCheckpoint(path string) (*CheckpointState, error) {
	return checkpoint.LoadFile(path)
}

// NewTraceRecorder creates a per-iteration phase-timing recorder to
// install via Trainer.SetPhaseHook.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }
