// Command gtopk-p2p reproduces Fig. 8: point-to-point transfer time
// versus message size under the α-β model, with jittered "measured"
// samples next to the predicted line. It can also measure the real
// loopback-TCP fabric for comparison.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"gtopkssgd/internal/bench"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/transport"
)

func main() {
	var (
		reps = flag.Int("reps", 5, "samples per message size")
		seed = flag.Uint64("seed", 42, "random seed for link jitter")
		real = flag.Bool("real", false, "also measure the loopback TCP fabric")
	)
	flag.Parse()
	if *reps < 1 {
		fmt.Fprintf(os.Stderr, "gtopk-p2p: -reps %d out of range: need >= 1\n\n", *reps)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Println(bench.Fig8(netsim.Paper1GbE(), *reps, *seed))
	if *real {
		if err := measureTCP(); err != nil {
			fmt.Fprintln(os.Stderr, "gtopk-p2p:", err)
			os.Exit(1)
		}
	}
}

// measureTCP times real loopback round trips for context (loopback is
// orders of magnitude faster than 1GbE; this is a plumbing check, not a
// reproduction of the paper's numbers).
func measureTCP() error {
	f, err := transport.NewTCP(2)
	if err != nil {
		return err
	}
	defer f.Close()
	ctx := context.Background()
	fmt.Println("\nReal loopback TCP round-trip times (plumbing check):")
	go func() {
		for {
			msg, err := f.Conn(1).Recv(ctx, 0, 1)
			if err != nil {
				return
			}
			if err := f.Conn(1).Send(ctx, 0, 2, msg); err != nil {
				return
			}
		}
	}()
	for _, n := range []int{1024, 65536, 1048576} {
		payload := make([]byte, n)
		start := time.Now()
		const rounds = 20
		for i := 0; i < rounds; i++ {
			if err := f.Conn(0).Send(ctx, 1, 1, payload); err != nil {
				return err
			}
			if _, err := f.Conn(0).Recv(ctx, 1, 2); err != nil {
				return err
			}
		}
		fmt.Printf("  %8d bytes: %v per round trip\n", n, time.Since(start)/rounds)
	}
	return nil
}
