package main

import (
	"os"
	"strings"
	"testing"

	"gtopkssgd/internal/clitest"
)

func TestMain(m *testing.M) {
	if clitest.InterceptMain() {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestFlagValidation: invocation errors exit 2 with usage.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		stderr string
	}{
		{"zero-reps", []string{"-reps", "0"}, "-reps 0 out of range"},
		{"negative-reps", []string{"-reps", "-5"}, "-reps -5 out of range"},
		{"unknown-flag", []string{"-zap"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := clitest.Run(t, tc.args...)
			if res.Code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", res.Code, res.Stderr)
			}
			if !strings.Contains(res.Stderr, tc.stderr) {
				t.Fatalf("stderr %q missing %q", res.Stderr, tc.stderr)
			}
		})
	}
}

// TestDefaultPrintsFig8: the analytic reproduction with one sample per
// size is instant and must succeed.
func TestDefaultPrintsFig8(t *testing.T) {
	res := clitest.Run(t, "-reps", "1")
	if res.Code != 0 {
		t.Fatalf("exit %d (stderr: %s)", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stdout, "Fig 8") {
		t.Fatalf("stdout missing the Fig 8 table:\n%s", res.Stdout)
	}
}
