package main

import (
	"os"
	"strings"
	"testing"

	"gtopkssgd/internal/clitest"
)

func TestMain(m *testing.M) {
	if clitest.InterceptMain() {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestFlagValidation: every invocation error must exit 2 and print both
// the reason and the usage text; unknown flags exit 2 via the flag
// package itself.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		stderr string // substring the diagnostic must contain
	}{
		{"no-mode", nil, "need either -coordinator (elastic mode) or -addrs"},
		{"empty-addrs-entry", []string{"-addrs", "a:1,,b:2"}, "entry 1 is empty"},
		{"rank-out-of-range", []string{"-addrs", "a:1,b:2", "-rank", "2"}, "-rank 2 out of range"},
		{"negative-rank", []string{"-addrs", "a:1", "-rank", "-1"}, "-rank -1 out of range"},
		{"bad-algo", []string{"-addrs", "a:1", "-algo", "sketchy"}, `unknown -algo "sketchy"`},
		{"bad-density", []string{"-addrs", "a:1", "-density", "1.5"}, "-density 1.5 out of range"},
		{"zero-density", []string{"-addrs", "a:1", "-density", "0"}, "-density 0 out of range"},
		{"bad-steps", []string{"-addrs", "a:1", "-steps", "0"}, "-steps 0 out of range"},
		{"bad-batch", []string{"-addrs", "a:1", "-batch", "0"}, "-batch 0 out of range"},
		{"bad-lr", []string{"-addrs", "a:1", "-lr", "-0.1"}, "-lr -0.1 out of range"},
		{"bad-timeout", []string{"-addrs", "a:1", "-timeout", "-1s"}, "-timeout -1s out of range"},
		{"bad-wire", []string{"-addrs", "a:1", "-wire", "v9"}, "-wire"},
		{"bad-select-shards", []string{"-addrs", "a:1", "-select-shards", "-2"}, "-select-shards -2 out of range"},
		{"bad-hier-group", []string{"-addrs", "a:1", "-hier-group", "-1"}, "-hier-group -1 out of range"},
		{"hier-group-needs-gtopk", []string{"-addrs", "a:1", "-algo", "dense", "-hier-group", "4"}, "-hier-group requires -algo gtopk"},
		{"negative-quorum", []string{"-addrs", "a:1", "-quorum", "-1"}, "-quorum -1 out of range"},
		{"quorum-needs-gtopk", []string{"-addrs", "a:1,b:2", "-algo", "dense", "-quorum", "2", "-round-timeout", "100ms"}, "-quorum requires -algo gtopk"},
		{"hier-quorum-below-group-majority", []string{"-addrs", "a:1,b:2,c:3,d:4,e:5,f:6,g:7,h:8", "-hier-group", "4", "-quorum", "2", "-round-timeout", "100ms"}, "-quorum 2 out of range [3,4] for -hier-group 4"},
		{"hier-quorum-above-group", []string{"-addrs", "a:1,b:2,c:3,d:4,e:5,f:6,g:7,h:8", "-hier-group", "4", "-quorum", "5", "-round-timeout", "100ms"}, "-quorum 5 out of range [3,4] for -hier-group 4"},
		{"leader-quorum-needs-hier", []string{"-addrs", "a:1,b:2,c:3,d:4", "-quorum", "3", "-leader-quorum", "2", "-round-timeout", "100ms"}, "-leader-quorum requires -quorum and -hier-group"},
		{"leader-quorum-below-majority", []string{"-addrs", "a:1,b:2,c:3,d:4,e:5,f:6,g:7,h:8", "-hier-group", "2", "-quorum", "2", "-leader-quorum", "2", "-round-timeout", "100ms"}, "-leader-quorum 2 out of range [3,4] for 4 groups"},
		{"level-budgets-need-hier", []string{"-addrs", "a:1,b:2,c:3,d:4", "-quorum", "3", "-round-timeout", "100ms", "-group-timeout", "20ms"}, "require -quorum and -hier-group"},
		{"level-budgets-all-or-none", []string{"-addrs", "a:1,b:2,c:3,d:4,e:5,f:6,g:7,h:8", "-hier-group", "4", "-quorum", "3", "-round-timeout", "100ms", "-group-timeout", "20ms"}, "per-level budgets must all be set and positive"},
		{"level-budgets-exceed-round", []string{"-addrs", "a:1,b:2,c:3,d:4,e:5,f:6,g:7,h:8", "-hier-group", "4", "-quorum", "3", "-round-timeout", "100ms", "-group-timeout", "50ms", "-leader-timeout", "50ms", "-verdict-timeout", "50ms"}, "exceed -round-timeout 100ms"},
		{"degenerate-hier-rejects-leader-quorum", []string{"-addrs", "a:1,b:2,c:3,d:4", "-hier-group", "4", "-quorum", "3", "-leader-quorum", "3", "-round-timeout", "100ms"}, "degenerates to the flat tree"},
		{"quorum-needs-timeout", []string{"-addrs", "a:1,b:2,c:3,d:4", "-quorum", "3"}, "-quorum requires -round-timeout > 0"},
		{"negative-round-timeout", []string{"-addrs", "a:1,b:2,c:3,d:4", "-quorum", "3", "-round-timeout", "-1s"}, "-quorum requires -round-timeout > 0"},
		{"round-timeout-needs-quorum", []string{"-addrs", "a:1,b:2", "-round-timeout", "100ms"}, "-round-timeout requires -quorum"},
		{"quorum-below-majority", []string{"-addrs", "a:1,b:2,c:3,d:4", "-quorum", "2", "-round-timeout", "100ms"}, "-quorum 2 out of range [3,4]"},
		{"quorum-above-world", []string{"-addrs", "a:1,b:2,c:3,d:4", "-quorum", "5", "-round-timeout", "100ms"}, "-quorum 5 out of range [3,4]"},
		{"coordinator-needs-name", []string{"-coordinator", "h:1", "-checkpoint-dir", "/tmp/x"}, "-coordinator requires -name"},
		{"coordinator-needs-ckptdir", []string{"-coordinator", "h:1", "-name", "w0"}, "-coordinator requires -checkpoint-dir"},
		{"elastic-topk-rejected", []string{"-coordinator", "h:1", "-name", "w0", "-checkpoint-dir", "/tmp/x", "-algo", "topk"}, "not elastic-safe"},
		{"addrs-conflicts-coordinator", []string{"-coordinator", "h:1", "-name", "w0", "-checkpoint-dir", "/tmp/x", "-addrs", "a:1"}, "-addrs conflicts with -coordinator"},
		{"bad-kernels", []string{"-addrs", "a:1", "-kernels", "bogus"}, `-kernels: sparse: unknown kernel mode "bogus"`},
		{"unknown-flag", []string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := clitest.Run(t, tc.args...)
			if res.Code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", res.Code, res.Stderr)
			}
			if !strings.Contains(res.Stderr, tc.stderr) {
				t.Fatalf("stderr %q missing %q", res.Stderr, tc.stderr)
			}
			if !strings.Contains(res.Stderr, "Usage") && !strings.Contains(res.Stderr, "-algo") {
				t.Fatalf("stderr lacks usage text: %q", res.Stderr)
			}
		})
	}
}
