// Command gtopk-worker runs ONE rank of a genuinely multi-process
// distributed training job over TCP. Launch one process per rank with
// the same address list:
//
//	gtopk-worker -rank 0 -addrs 127.0.0.1:7000,127.0.0.1:7001 &
//	gtopk-worker -rank 1 -addrs 127.0.0.1:7000,127.0.0.1:7001 &
//
// All ranks train the same model with identical seeds; the aggregation
// algorithm keeps replicas bit-identical, which rank 0 reports at the
// end. Optional checkpointing (-checkpoint) saves the full training
// state (weights, momentum, error-feedback residual) and resumes from it
// when the file exists.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gtopkssgd/internal/checkpoint"
	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/data"
	"gtopkssgd/internal/nn/models"
	"gtopkssgd/internal/trace"
	"gtopkssgd/internal/transport"
)

func main() {
	var (
		rank     = flag.Int("rank", 0, "this worker's rank")
		addrList = flag.String("addrs", "", "comma-separated host:port per rank")
		algo     = flag.String("algo", "gtopk", "dense|topk|gtopk")
		steps    = flag.Int("steps", 50, "training steps")
		batch    = flag.Int("batch", 16, "mini-batch size per worker")
		density  = flag.Float64("density", 0.01, "gradient density rho")
		lr       = flag.Float64("lr", 0.05, "learning rate")
		seed     = flag.Uint64("seed", 42, "shared model/data seed")
		ckptPath = flag.String("checkpoint", "", "checkpoint file (resume if present, save at end)")
		traceCSV = flag.String("trace", "", "write per-iteration phase timings CSV to this file")
		timeout  = flag.Duration("timeout", 60*time.Second, "mesh setup + training deadline")
	)
	flag.Parse()
	if err := run(*rank, *addrList, *algo, *steps, *batch, *density, *lr, *seed, *ckptPath, *traceCSV, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "gtopk-worker:", err)
		os.Exit(1)
	}
}

func run(rank int, addrList, algo string, steps, batch int, density, lr float64,
	seed uint64, ckptPath, traceCSV string, timeout time.Duration) error {
	addrs := strings.Split(addrList, ",")
	if addrList == "" || len(addrs) < 1 {
		return fmt.Errorf("need -addrs with one host:port per rank")
	}
	workers := len(addrs)

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	conn, err := transport.NewTCPWorker(ctx, rank, addrs)
	if err != nil {
		return fmt.Errorf("join mesh: %w", err)
	}
	defer conn.Close() //nolint:errcheck // process exit follows

	comm := collective.New(conn)
	ds, err := data.NewImages(seed+1, 10, 3, 8, 8, 0.4)
	if err != nil {
		return err
	}
	cls := models.MLP(ds.Dim(), 64, 10)
	cls.Net.Init(seed)
	dim := cls.Net.ParamCount()

	var (
		agg core.Aggregator
		sp  *core.Sparsifier
	)
	k := core.DensityToK(dim, density)
	switch algo {
	case "dense":
		agg = core.NewDenseAggregator(comm, dim)
	case "topk":
		a, err := core.NewTopKAggregator(comm, dim, k)
		if err != nil {
			return err
		}
		agg, sp = a, a.Sparsifier()
	case "gtopk":
		a, err := core.NewGTopKAggregator(comm, dim, k)
		if err != nil {
			return err
		}
		agg, sp = a, a.Sparsifier()
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	trainer, err := core.NewTrainer(core.TrainConfig{LR: float32(lr), Momentum: 0.9},
		agg, cls.Net.Parameters(), models.GradFn(cls, ds, rank, workers, batch))
	if err != nil {
		return err
	}
	rec := trace.NewRecorder()
	if traceCSV != "" {
		trainer.SetPhaseHook(func(iter int, pt core.PhaseTimes) {
			rec.Record(iter, trace.PhaseCompute, pt.Compute)
			rec.Record(iter, trace.PhaseAggregate, pt.Aggregate)
			rec.Record(iter, trace.PhaseUpdate, pt.Update)
		})
	}

	// Resume if a checkpoint exists.
	if ckptPath != "" {
		if st, err := checkpoint.LoadFile(ckptPath); err == nil {
			copy(cls.Net.Parameters(), st.Weights)
			if err := trainer.Restore(int(st.Iter), st.Velocity); err != nil {
				return fmt.Errorf("restore: %w", err)
			}
			if sp != nil {
				if err := sp.RestoreResidual(st.Residual); err != nil {
					return fmt.Errorf("restore residual: %w", err)
				}
			}
			fmt.Printf("rank %d: resumed from %s at iteration %d\n", rank, ckptPath, st.Iter)
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "rank %d: ignoring unreadable checkpoint: %v\n", rank, err)
		}
	}

	var lastLoss float64
	for s := 0; s < steps; s++ {
		loss, err := trainer.Step(ctx)
		if err != nil {
			return fmt.Errorf("step %d: %w", s, err)
		}
		lastLoss = loss
		if rank == 0 && (s%10 == 0 || s == steps-1) {
			fmt.Printf("iter %4d  loss %.4f\n", trainer.Iter(), loss)
		}
	}

	if ckptPath != "" {
		st := &checkpoint.State{
			Iter:     uint64(trainer.Iter()),
			Weights:  cls.Net.Parameters(),
			Velocity: trainer.Velocity(),
			Meta:     map[string]string{"algo": algo, "model": "mlp"},
		}
		if sp != nil {
			st.Residual = sp.Residual()
		}
		if err := checkpoint.SaveFile(ckptPath, st); err != nil {
			return err
		}
		fmt.Printf("rank %d: checkpoint saved to %s\n", rank, ckptPath)
	}
	if traceCSV != "" {
		f, err := os.Create(traceCSV)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(f); err != nil {
			f.Close() //nolint:errcheck // error path
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// Replica-consistency check: everyone agrees on a weight digest.
	digest := []float32{checksum(cls.Net.Parameters())}
	if err := comm.RingAllReduceSum(ctx, digest); err != nil {
		return err
	}
	if rank == 0 {
		expected := checksum(cls.Net.Parameters()) * float32(workers)
		status := "CONSISTENT"
		if digest[0] != expected {
			status = "DIVERGED"
		}
		fmt.Printf("final loss %.4f; replicas %s across %d workers\n", lastLoss, status, workers)
	}
	return nil
}

// checksum folds a weight vector into one float (order-dependent, which
// is what we want: replicas must match element-wise).
func checksum(w []float32) float32 {
	var s float32
	for i, v := range w {
		s += v * float32(i%97+1)
	}
	return s
}
