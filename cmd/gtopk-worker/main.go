// Command gtopk-worker runs ONE rank of a genuinely multi-process
// distributed training job over TCP, in one of two modes.
//
// Elastic mode (preferred): workers join a gtopk-coordinator by name
// and never learn about ranks or address lists; the coordinator assigns
// both and reassigns them when membership changes:
//
//	gtopk-coordinator -listen 127.0.0.1:7070 -world 4 &
//	for i in 0 1 2 3; do
//	    gtopk-worker -coordinator 127.0.0.1:7070 -name w$i \
//	                 -checkpoint-dir /tmp/gtopk &
//	done
//
// If a worker is SIGKILLed mid-training, the survivors re-form the mesh
// at the smaller world size and resume from their last checkpoint —
// momentum and error-feedback residual intact. The reverse works too: a
// worker started against an already-running job (same command line, new
// -name) is parked by the coordinator and admitted at the next epoch
// boundary, adopting the cluster's weights and momentum from a donor
// rank; park and admission events print on stderr. See
// docs/ARCHITECTURE.md for the failure/recovery and grow walkthroughs.
//
// Static mode (legacy): a fixed, hand-written membership; the job dies
// with its weakest worker:
//
//	gtopk-worker -rank 0 -addrs 127.0.0.1:7000,127.0.0.1:7001 &
//	gtopk-worker -rank 1 -addrs 127.0.0.1:7000,127.0.0.1:7001 &
//
// All ranks train the same model with identical seeds; the aggregation
// algorithm keeps replicas bit-identical, which rank 0 reports at the
// end.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gtopkssgd/internal/checkpoint"
	"gtopkssgd/internal/cluster"
	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/data"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/nn/models"
	"gtopkssgd/internal/quant"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/trace"
	"gtopkssgd/internal/transport"
)

// options collects every flag; one struct keeps validation in one
// place and testable.
type options struct {
	// elastic mode
	coordinator string
	name        string
	dataAddr    string
	ckptDir     string
	ckptEvery   int
	// static mode
	rank     int
	addrList string
	ckptPath string
	traceCSV string
	// shared training parameters
	algo         string
	steps        int
	batch        int
	density      float64
	lr           float64
	seed         uint64
	timeout      time.Duration
	tcpNoDelay   bool
	wire         string
	valueCodec   string
	selectShards int
	hierGroup    int
	quorum       int
	leaderQuorum int
	roundTimeout time.Duration
	groupTO      time.Duration
	leaderTO     time.Duration
	verdictTO    time.Duration
	kernels      string

	// wireCodec is the parsed -wire flag (with -value-codec folded in).
	wireCodec sparse.Codec
}

// tcpOptions maps the -tcp-nodelay and -wire flags onto the transport
// options; the mesh handshake offers the codec's wire version and
// settles on the minimum any member offers.
func (o *options) tcpOptions() transport.TCPOptions {
	return transport.TCPOptions{
		DisableNoDelay: !o.tcpNoDelay,
		WireVersion:    o.wireCodec.WireVersion(),
	}
}

func main() {
	var o options
	flag.StringVar(&o.coordinator, "coordinator", "", "coordinator control address (enables elastic mode)")
	flag.StringVar(&o.name, "name", "", "stable worker name (elastic mode; required with -coordinator)")
	flag.StringVar(&o.dataAddr, "data-addr", "127.0.0.1:0", "data-plane listen address (elastic mode)")
	flag.StringVar(&o.ckptDir, "checkpoint-dir", "", "directory for per-worker snapshots (elastic mode; required)")
	flag.IntVar(&o.ckptEvery, "checkpoint-every", 10, "snapshot cadence in iterations (elastic mode)")
	flag.IntVar(&o.rank, "rank", 0, "this worker's rank (static mode)")
	flag.StringVar(&o.addrList, "addrs", "", "comma-separated host:port per rank (static mode)")
	flag.StringVar(&o.ckptPath, "checkpoint", "", "checkpoint file: resume if present, save at end (static mode)")
	flag.StringVar(&o.traceCSV, "trace", "", "write per-iteration phase timings CSV to this file (static mode)")
	flag.StringVar(&o.algo, "algo", "gtopk", "dense|topk|gtopk")
	flag.IntVar(&o.steps, "steps", 50, "training steps")
	flag.IntVar(&o.batch, "batch", 16, "mini-batch size per worker")
	flag.Float64Var(&o.density, "density", 0.01, "gradient density rho in (0,1]")
	flag.Float64Var(&o.lr, "lr", 0.05, "learning rate")
	flag.Uint64Var(&o.seed, "seed", 42, "shared model/data seed")
	flag.DurationVar(&o.timeout, "timeout", 60*time.Second, "static: mesh setup + training deadline; elastic: per-epoch mesh rebuild bound")
	flag.BoolVar(&o.tcpNoDelay, "tcp-nodelay", true, "enable TCP_NODELAY on mesh sockets (false re-enables Nagle's algorithm)")
	flag.StringVar(&o.wire, "wire", "v2", "sparse wire codec: v1 (flat), v2 (delta/varint, lossless), v2-fp16 (half-precision values), v3 (compound, lossless) or v3-<value> for any -value-codec spelling; meshes settle on the lowest version any worker offers")
	flag.StringVar(&o.valueCodec, "value-codec", "", "value codec for the compound v3 pipeline: fp32, fp16, qsgd8, qsgd4, qsgd2, ternary or sign (requires -wire v3; quantization error folds into the error-feedback residual)")
	flag.IntVar(&o.selectShards, "select-shards", 0, "parallel shards for the local top-k selection (0 = one per core, 1 = serial; results are bit-identical)")
	flag.IntVar(&o.hierGroup, "hier-group", 0, "hierarchical gTop-k group size G: workers aggregate within groups of G, leaders exchange globally (0 disables; requires -algo gtopk; G >= world degenerates to the flat tree)")
	flag.IntVar(&o.quorum, "quorum", 0, "straggler-tolerant quorum size q: each aggregation round closes after q contributions under the -round-timeout deadline, refunding stragglers' blocks to their residuals (0 disables; requires -algo gtopk and a strict majority; with -hier-group, q is the intra-group quorum q_g over each group of G)")
	flag.IntVar(&o.leaderQuorum, "leader-quorum", 0, "hierarchical quorum's leader-level quorum q_l over the group aggregates: a wholly slow group misses the round as a unit and refunds to residual (0 = wait for every group; requires -quorum and -hier-group)")
	flag.DurationVar(&o.roundTimeout, "round-timeout", 0, "per-round gather deadline for -quorum (must be > 0 when -quorum is set; with -hier-group it is the whole-round budget the per-level deadlines split)")
	flag.DurationVar(&o.groupTO, "group-timeout", 0, "hierarchical quorum's intra-group gather budget (set all three level budgets or none; zero = the default 1/4:1/2:1/4 split of -round-timeout; requires -quorum and -hier-group)")
	flag.DurationVar(&o.leaderTO, "leader-timeout", 0, "hierarchical quorum's leader-level gather budget (see -group-timeout)")
	flag.DurationVar(&o.verdictTO, "verdict-timeout", 0, "hierarchical quorum's per-attempt verdict broadcast budget (see -group-timeout)")
	flag.StringVar(&o.kernels, "kernels", sparse.DefaultKernels(), "sparse kernel implementation: fast (vectorized, where the build supports it) or pure; results are bit-identical")
	flag.Parse()

	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "gtopk-worker: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if o.coordinator != "" {
		err = runElastic(&o)
	} else {
		err = runStatic(&o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtopk-worker:", err)
		os.Exit(1)
	}
}

// validate rejects nonsensical flag combinations up front with a usage
// message instead of a late panic deep inside the training loop.
func (o *options) validate() error {
	switch o.algo {
	case "dense", "topk", "gtopk":
	default:
		return fmt.Errorf("unknown -algo %q (want dense, topk or gtopk)", o.algo)
	}
	if o.steps < 1 {
		return fmt.Errorf("-steps %d out of range: need >= 1", o.steps)
	}
	if o.batch < 1 {
		return fmt.Errorf("-batch %d out of range: need >= 1", o.batch)
	}
	if o.density <= 0 || o.density > 1 {
		return fmt.Errorf("-density %v out of range: need 0 < rho <= 1", o.density)
	}
	if o.lr <= 0 {
		return fmt.Errorf("-lr %v out of range: need > 0", o.lr)
	}
	if o.timeout <= 0 {
		return fmt.Errorf("-timeout %v out of range: need > 0", o.timeout)
	}
	codec, err := sparse.ParseCodec(o.wire)
	if err != nil {
		return fmt.Errorf("-wire: %w", err)
	}
	o.wireCodec = codec
	if o.valueCodec != "" {
		vc, err := sparse.ParseValueCodec(o.valueCodec)
		if err != nil {
			return fmt.Errorf("-value-codec: %w", err)
		}
		if o.wireCodec.WireVersion() != 3 {
			return fmt.Errorf("-value-codec %s requires -wire v3 (got -wire %s): quantized value streams are a wire format v3 feature", vc, o.wire)
		}
		o.wireCodec = sparse.CodecForWireValue(3, vc)
	}
	if o.selectShards < 0 {
		return fmt.Errorf("-select-shards %d out of range: need >= 0", o.selectShards)
	}
	if o.hierGroup < 0 {
		return fmt.Errorf("-hier-group %d out of range: need >= 0", o.hierGroup)
	}
	if o.hierGroup > 0 && o.algo != "gtopk" {
		return fmt.Errorf("-hier-group requires -algo gtopk (hierarchical aggregation is a gTop-k topology)")
	}
	if o.quorum < 0 {
		return fmt.Errorf("-quorum %d out of range: need >= 0", o.quorum)
	}
	if o.quorum > 0 {
		if o.algo != "gtopk" {
			return fmt.Errorf("-quorum requires -algo gtopk (quorum rounds are a gTop-k collective mode)")
		}
		if o.roundTimeout <= 0 {
			return fmt.Errorf("-quorum requires -round-timeout > 0 (got %v): a quorum without a deadline never closes early", o.roundTimeout)
		}
	} else if o.roundTimeout != 0 {
		return fmt.Errorf("-round-timeout requires -quorum (a deadline only bounds quorum rounds)")
	}
	if o.leaderQuorum < 0 {
		return fmt.Errorf("-leader-quorum %d out of range: need >= 0", o.leaderQuorum)
	}
	if o.leaderQuorum > 0 && (o.quorum == 0 || o.hierGroup == 0) {
		return fmt.Errorf("-leader-quorum requires -quorum and -hier-group (the leader level only exists in the hierarchical quorum collective)")
	}
	if o.groupTO != 0 || o.leaderTO != 0 || o.verdictTO != 0 {
		if o.quorum == 0 || o.hierGroup == 0 {
			return fmt.Errorf("-group-timeout/-leader-timeout/-verdict-timeout require -quorum and -hier-group (per-level budgets only exist in the hierarchical quorum collective)")
		}
		if o.groupTO <= 0 || o.leaderTO <= 0 || o.verdictTO <= 0 {
			return fmt.Errorf("per-level budgets must all be set and positive (got -group-timeout %v, -leader-timeout %v, -verdict-timeout %v; zero all three for the default 1/4:1/2:1/4 split)",
				o.groupTO, o.leaderTO, o.verdictTO)
		}
		if sum := o.groupTO + o.leaderTO + o.verdictTO; sum > o.roundTimeout {
			return fmt.Errorf("per-level budgets %v + %v + %v = %v exceed -round-timeout %v", o.groupTO, o.leaderTO, o.verdictTO, sum, o.roundTimeout)
		}
	}
	if err := sparse.SetKernels(o.kernels); err != nil {
		return fmt.Errorf("-kernels: %w", err)
	}

	if o.coordinator != "" {
		// Elastic mode.
		if o.name == "" {
			return fmt.Errorf("-coordinator requires -name (the worker's stable identity)")
		}
		if o.ckptDir == "" {
			return fmt.Errorf("-coordinator requires -checkpoint-dir (failure recovery resumes from snapshots)")
		}
		if o.ckptEvery < 1 {
			return fmt.Errorf("-checkpoint-every %d out of range: need >= 1", o.ckptEvery)
		}
		if o.algo == "topk" {
			// topk's AllGather still requires power-of-two worlds, so the
			// first shrink (4 -> 3) would kill the job elasticity exists
			// to save. dense and gtopk work at any world size.
			return fmt.Errorf("-algo topk is not elastic-safe (AllGather needs power-of-two worlds); use gtopk or dense")
		}
		if o.addrList != "" {
			return fmt.Errorf("-addrs conflicts with -coordinator: elastic membership comes from the coordinator")
		}
		if o.ckptPath != "" {
			return fmt.Errorf("-checkpoint conflicts with -coordinator: elastic snapshots live in -checkpoint-dir, keyed by -name")
		}
		if o.traceCSV != "" {
			return fmt.Errorf("-trace is static-mode only")
		}
		return nil
	}

	// Static mode.
	if o.addrList == "" {
		return fmt.Errorf("need either -coordinator (elastic mode) or -addrs (static mode)")
	}
	addrs := strings.Split(o.addrList, ",")
	for i, a := range addrs {
		if strings.TrimSpace(a) == "" {
			return fmt.Errorf("-addrs entry %d is empty (got %q)", i, o.addrList)
		}
	}
	if o.rank < 0 || o.rank >= len(addrs) {
		return fmt.Errorf("-rank %d out of range [0,%d) for %d-entry -addrs", o.rank, len(addrs), len(addrs))
	}
	// Static mode knows the world size at parse time, so the quorum range
	// checks happen here; elastic mode defers them to Build, where the
	// coordinator's epoch world is known (SetQuorum validates).
	if o.quorum > 0 {
		world := len(addrs)
		if o.hierGroup > 1 && o.hierGroup < world {
			// Hierarchical regime: -quorum is the intra-group quorum q_g.
			if lo := core.QuorumMin(o.hierGroup); o.quorum < lo || o.quorum > o.hierGroup {
				return fmt.Errorf("-quorum %d out of range [%d,%d] for -hier-group %d (the intra-group quorum must be a strict majority of one group)",
					o.quorum, lo, o.hierGroup, o.hierGroup)
			}
			numGroups := (world + o.hierGroup - 1) / o.hierGroup
			if o.leaderQuorum > 0 {
				if lo := core.QuorumMin(numGroups); o.leaderQuorum < lo || o.leaderQuorum > numGroups {
					return fmt.Errorf("-leader-quorum %d out of range [%d,%d] for %d groups of -hier-group %d",
						o.leaderQuorum, lo, numGroups, numGroups, o.hierGroup)
				}
			}
		} else {
			if o.leaderQuorum > 0 || o.groupTO != 0 {
				return fmt.Errorf("-hier-group %d does not split a %d-entry -addrs world into groups (it degenerates to the flat tree), so -leader-quorum and per-level budgets do not apply",
					o.hierGroup, world)
			}
			if lo := core.QuorumMin(world); o.quorum < lo || o.quorum > world {
				return fmt.Errorf("-quorum %d out of range [%d,%d] for %d-entry -addrs (a quorum must be a strict majority)",
					o.quorum, lo, world, world)
			}
		}
	}
	return nil
}

// quorumConfig assembles the parsed quorum flags into the core
// configuration (zero level budgets select the default split).
func (o *options) quorumConfig() core.QuorumConfig {
	return core.QuorumConfig{
		Q:       o.quorum,
		LeaderQ: o.leaderQuorum,
		Timeout: o.roundTimeout,
		Levels: core.LevelTimeouts{
			Group:     o.groupTO,
			Leader:    o.leaderTO,
			Broadcast: o.verdictTO,
		},
	}
}

// buildAggregator assembles the configured aggregation algorithm over a
// communicator, applying the -wire value-precision preference and the
// -select-shards selection parallelism; sp is non-nil for the
// sparsifying algorithms.
func buildAggregator(o *options, comm *collective.Comm, dim int) (agg core.Aggregator, sp *core.Sparsifier, err error) {
	comm.SetFP16Values(o.wireCodec == sparse.CodecV2F16 || o.wireCodec == sparse.CodecV3F16)
	if o.wireCodec.Value().Quantized() {
		// Rank-distinct stream off the shared seed: replicas need no rng
		// agreement (receivers decode the sender's bytes, the bcast root
		// pins its own copy), and distinct streams decorrelate the
		// stochastic rounding noise across workers. On a mesh that
		// negotiates below v3 the compressor degrades to lossless v2.
		comm.SetCompressor(quant.NewStack(o.wireCodec.Value(), o.seed).Fork(uint64(comm.Rank())))
	}
	k := core.DensityToK(dim, o.density)
	switch o.algo {
	case "dense":
		return core.NewDenseAggregator(comm, dim), nil, nil
	case "topk":
		a, err := core.NewTopKAggregator(comm, dim, k)
		if err != nil {
			return nil, nil, err
		}
		sp = a.Sparsifier()
		sp.SetShards(o.selectShards)
		return a, sp, nil
	case "gtopk":
		if o.hierGroup > 0 {
			a, err := core.NewHierarchicalAggregator(comm, dim, k, o.hierGroup)
			if err != nil {
				return nil, nil, err
			}
			if o.quorum > 0 {
				// Per-level deadline budgets over the grouped topology; an
				// illegal configuration for this world fails the epoch build
				// loudly instead of wedging a round.
				if err := a.SetQuorum(o.quorumConfig()); err != nil {
					return nil, nil, err
				}
			}
			sp = a.Sparsifier()
			sp.SetShards(o.selectShards)
			return a, sp, nil
		}
		a, err := core.NewGTopKAggregator(comm, dim, k)
		if err != nil {
			return nil, nil, err
		}
		if o.quorum > 0 {
			// Elastic worlds first learn their size here; an illegal
			// (quorum, world) pair fails the epoch build loudly instead of
			// wedging a round.
			if err := a.SetQuorum(o.quorumConfig()); err != nil {
				return nil, nil, err
			}
		}
		sp = a.Sparsifier()
		sp.SetShards(o.selectShards)
		return a, sp, nil
	}
	return nil, nil, fmt.Errorf("unknown algorithm %q", o.algo)
}

// degradeAfter is the consecutive-missed-round streak at which an
// elastic worker reports itself degraded to the coordinator (telemetry
// only; the epoch is never reformed for a slow rank).
const degradeAfter = 3

// runElastic joins a coordinator and trains until the job completes,
// surviving membership changes.
func runElastic(o *options) error {
	ds, err := data.NewImages(o.seed+1, 10, 3, 8, 8, 0.4)
	if err != nil {
		return err
	}
	// One tally across epochs: per-worker compression totals survive
	// membership changes the way the communication Stats do.
	tally := &metrics.WireTally{}
	var negotiated string
	res, err := cluster.Run(context.Background(), cluster.RuntimeConfig{
		Name:            o.name,
		Coordinator:     o.coordinator,
		DataAddr:        o.dataAddr,
		Steps:           o.steps,
		CheckpointPath:  filepath.Join(o.ckptDir, o.name+".gtkc"),
		CheckpointEvery: o.ckptEvery,
		MeshTimeout:     o.timeout,
		TCP:             o.tcpOptions(),
		DegradeAfter:    degradeAfter,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		OnStep: func(info cluster.StepInfo) error {
			if info.Rank == 0 && (info.Iter%10 == 0 || info.Iter == o.steps) {
				fmt.Printf("epoch %d  iter %4d  loss %.4f  (world %d)\n", info.Epoch, info.Iter, info.Loss, info.World)
				fmt.Printf("wire: codec=%s %s\n", negotiated, tally.Snapshot())
			}
			return nil
		},
		Build: func(rank, world int, comm *collective.Comm) (*cluster.Session, error) {
			comm.SetWireTally(tally)
			cls := models.MLP(ds.Dim(), 64, 10)
			cls.Net.Init(o.seed)
			agg, sp, err := buildAggregator(o, comm, cls.Net.ParamCount())
			if err != nil {
				return nil, err
			}
			negotiated = comm.WireCodec().String()
			tr, err := core.NewTrainer(core.TrainConfig{LR: float32(o.lr), Momentum: 0.9},
				agg, cls.Net.Parameters(), models.GradFn(cls, ds, rank, world, o.batch))
			if err != nil {
				return nil, err
			}
			sess := &cluster.Session{Trainer: tr, Params: cls.Net.Parameters(), Sparsifier: sp}
			if q, ok := agg.(interface{ QuorumMissStreak() int }); ok && o.quorum > 0 {
				sess.QuorumMisses = q.QuorumMissStreak
			}
			if g, ok := agg.(interface{ QuorumGroup() int }); ok && o.quorum > 0 {
				// Group-granular degraded telemetry: a wholly partitioned
				// hierarchy group streaks — and reports — as a unit.
				sess.QuorumGroup = g.QuorumGroup
			}
			return sess, nil
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s: completed %d steps across %d epoch(s); final loss %.4f at world %d (rank %d)\n",
		o.name, res.Steps, res.Epochs, res.LastLoss, res.FinalWorld, res.FinalRank)
	return nil
}

// runStatic is the fixed-membership path: the address list is frozen at
// launch and any worker death kills the job.
func runStatic(o *options) error {
	addrs := strings.Split(o.addrList, ",")
	workers := len(addrs)

	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	conn, err := transport.JoinMesh(ctx, transport.MeshConfig{
		Rank: o.rank, Addrs: addrs, TCP: o.tcpOptions(),
	})
	if err != nil {
		return fmt.Errorf("join mesh: %w", err)
	}
	defer conn.Close() //nolint:errcheck // process exit follows

	comm := collective.New(conn)
	tally := &metrics.WireTally{}
	comm.SetWireTally(tally)
	ds, err := data.NewImages(o.seed+1, 10, 3, 8, 8, 0.4)
	if err != nil {
		return err
	}
	cls := models.MLP(ds.Dim(), 64, 10)
	cls.Net.Init(o.seed)

	agg, sp, err := buildAggregator(o, comm, cls.Net.ParamCount())
	if err != nil {
		return err
	}
	trainer, err := core.NewTrainer(core.TrainConfig{LR: float32(o.lr), Momentum: 0.9},
		agg, cls.Net.Parameters(), models.GradFn(cls, ds, o.rank, workers, o.batch))
	if err != nil {
		return err
	}
	rec := trace.NewRecorder()
	if o.traceCSV != "" {
		trainer.SetPhaseHook(func(iter int, pt core.PhaseTimes) {
			rec.Record(iter, trace.PhaseCompute, pt.Compute)
			rec.Record(iter, trace.PhaseAggregate, pt.Aggregate)
			rec.Record(iter, trace.PhaseUpdate, pt.Update)
		})
	}

	// Resume if a checkpoint exists.
	if o.ckptPath != "" {
		if st, err := checkpoint.LoadFile(o.ckptPath); err == nil {
			copy(cls.Net.Parameters(), st.Weights)
			if err := trainer.Restore(int(st.Iter), st.Velocity); err != nil {
				return fmt.Errorf("restore: %w", err)
			}
			if sp != nil {
				if err := sp.RestoreResidual(st.Residual); err != nil {
					return fmt.Errorf("restore residual: %w", err)
				}
			}
			fmt.Printf("rank %d: resumed from %s at iteration %d\n", o.rank, o.ckptPath, st.Iter)
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "rank %d: ignoring unreadable checkpoint: %v\n", o.rank, err)
		}
	}

	var lastLoss float64
	for s := 0; s < o.steps; s++ {
		loss, err := trainer.Step(ctx)
		if err != nil {
			return fmt.Errorf("step %d: %w", s, err)
		}
		lastLoss = loss
		if o.rank == 0 && (s%10 == 0 || s == o.steps-1) {
			fmt.Printf("iter %4d  loss %.4f\n", trainer.Iter(), loss)
			fmt.Printf("wire: codec=%s %s\n", comm.WireCodec(), tally.Snapshot())
		}
	}

	if o.ckptPath != "" {
		st := &checkpoint.State{
			Iter:     uint64(trainer.Iter()),
			Weights:  cls.Net.Parameters(),
			Velocity: trainer.Velocity(),
			Meta:     map[string]string{"algo": o.algo, "model": "mlp"},
		}
		if sp != nil {
			st.Residual = sp.Residual()
		}
		if err := checkpoint.SaveFile(o.ckptPath, st); err != nil {
			return err
		}
		fmt.Printf("rank %d: checkpoint saved to %s\n", o.rank, o.ckptPath)
	}
	if o.traceCSV != "" {
		f, err := os.Create(o.traceCSV)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(f); err != nil {
			f.Close() //nolint:errcheck // error path
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// Replica-consistency check: everyone agrees on a weight digest.
	digest := []float32{checksum(cls.Net.Parameters())}
	if err := comm.RingAllReduceSum(ctx, digest); err != nil {
		return err
	}
	if o.rank == 0 {
		expected := checksum(cls.Net.Parameters()) * float32(workers)
		status := "CONSISTENT"
		if digest[0] != expected {
			status = "DIVERGED"
		}
		fmt.Printf("final loss %.4f; replicas %s across %d workers\n", lastLoss, status, workers)
	}
	return nil
}

// checksum folds a weight vector into one float (order-dependent, which
// is what we want: replicas must match element-wise).
func checksum(w []float32) float32 {
	var s float32
	for i, v := range w {
		s += v * float32(i%97+1)
	}
	return s
}
