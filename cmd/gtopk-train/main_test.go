package main

import (
	"os"
	"strings"
	"testing"

	"gtopkssgd/internal/clitest"
)

func TestMain(m *testing.M) {
	if clitest.InterceptMain() {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestFlagValidation: invocation errors exit 2 with usage before any
// training starts.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		stderr string
	}{
		{"bad-model", []string{"-model", "gpt5"}, `unknown -model "gpt5"`},
		{"bad-algo", []string{"-algo", "magic"}, `unknown -algo "magic"`},
		{"zero-workers", []string{"-workers", "0"}, "-workers 0 out of range"},
		{"zero-batch", []string{"-batch", "0"}, "-batch 0 out of range"},
		{"zero-epochs", []string{"-epochs", "0"}, "-epochs/-iters must be >= 1"},
		{"zero-iters", []string{"-iters", "0"}, "-epochs/-iters must be >= 1"},
		{"bad-density", []string{"-density", "2"}, "-density 2 out of range"},
		{"bad-lr", []string{"-lr", "0"}, "-lr 0 out of range"},
		{"bad-eval", []string{"-eval", "-1"}, "-eval -1 out of range"},
		{"bad-hier-group", []string{"-hier-group", "-2"}, "-hier-group -2 out of range"},
		{"hier-group-needs-hier-algo", []string{"-algo", "gtopk", "-hier-group", "4"}, "-hier-group requires -algo gtopk-hier"},
		{"negative-quorum", []string{"-quorum", "-3"}, "-quorum -3 out of range"},
		{"quorum-needs-gtopk", []string{"-algo", "dense", "-quorum", "3", "-round-timeout", "50ms"}, "-quorum requires -algo gtopk"},
		{"negative-leader-quorum", []string{"-leader-quorum", "-1"}, "-leader-quorum -1 out of range"},
		{"leader-quorum-needs-hier-algo", []string{"-algo", "gtopk", "-workers", "8", "-quorum", "5", "-leader-quorum", "3", "-round-timeout", "50ms"}, "-leader-quorum requires -quorum and -algo gtopk-hier"},
		{"hier-quorum-below-group-majority", []string{"-algo", "gtopk-hier", "-workers", "8", "-hier-group", "4", "-quorum", "2", "-round-timeout", "50ms"}, "-quorum 2 out of range [3,4] for groups of 4"},
		{"leader-quorum-below-majority", []string{"-algo", "gtopk-hier", "-workers", "8", "-hier-group", "2", "-quorum", "2", "-leader-quorum", "2", "-round-timeout", "50ms"}, "-leader-quorum 2 out of range [3,4] for 4 groups"},
		{"degenerate-hier-rejects-leader-quorum", []string{"-algo", "gtopk-hier", "-workers", "4", "-hier-group", "4", "-quorum", "3", "-leader-quorum", "1", "-round-timeout", "50ms"}, "degenerates to the flat tree"},
		{"quorum-below-majority", []string{"-workers", "4", "-quorum", "2", "-round-timeout", "50ms"}, "-quorum 2 out of range [3,4]"},
		{"quorum-above-world", []string{"-workers", "4", "-quorum", "5", "-round-timeout", "50ms"}, "-quorum 5 out of range [3,4]"},
		{"quorum-needs-timeout", []string{"-workers", "4", "-quorum", "3"}, "-quorum requires -round-timeout > 0"},
		{"zero-round-timeout", []string{"-workers", "4", "-quorum", "3", "-round-timeout", "0s"}, "-quorum requires -round-timeout > 0"},
		{"round-timeout-needs-quorum", []string{"-round-timeout", "50ms"}, "-round-timeout requires -quorum"},
		{"bad-kernels", []string{"-kernels", "bogus"}, `-kernels: sparse: unknown kernel mode "bogus"`},
		{"unknown-flag", []string{"-warp-speed"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := clitest.Run(t, tc.args...)
			if res.Code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", res.Code, res.Stderr)
			}
			if !strings.Contains(res.Stderr, tc.stderr) {
				t.Fatalf("stderr %q missing %q", res.Stderr, tc.stderr)
			}
			if !strings.Contains(res.Stderr, "Usage") {
				t.Fatalf("stderr lacks usage text: %q", res.Stderr)
			}
		})
	}
}

// TestQuorumTrainingSmoke: a tiny full-sync quorum run completes — the
// -quorum/-round-timeout flags reach the aggregator.
func TestQuorumTrainingSmoke(t *testing.T) {
	res := clitest.Run(t, "-model", "mlp", "-algo", "gtopk", "-quorum", "4", "-round-timeout", "5s",
		"-workers", "4", "-epochs", "1", "-iters", "2", "-batch", "2", "-density", "0.05")
	if res.Code != 0 {
		t.Fatalf("exit %d (stderr: %s)", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stdout, "algo=gtopk") || !strings.Contains(res.Stdout, "epoch   1") {
		t.Fatalf("stdout missing training output:\n%s", res.Stdout)
	}
}

// TestHierQuorumTrainingSmoke: a tiny full-sync hierarchical quorum run
// completes — the -quorum/-leader-quorum/-round-timeout flags reach the
// hierarchical aggregator through TrainSpec.
func TestHierQuorumTrainingSmoke(t *testing.T) {
	res := clitest.Run(t, "-model", "mlp", "-algo", "gtopk-hier", "-hier-group", "2",
		"-quorum", "2", "-leader-quorum", "2", "-round-timeout", "5s",
		"-workers", "4", "-epochs", "1", "-iters", "2", "-batch", "2", "-density", "0.05")
	if res.Code != 0 {
		t.Fatalf("exit %d (stderr: %s)", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stdout, "algo=gtopk-hier") || !strings.Contains(res.Stdout, "epoch   1") {
		t.Fatalf("stdout missing training output:\n%s", res.Stdout)
	}
}

// TestHierarchicalTrainingSmoke: a tiny gtopk-hier run completes and
// reports its loss curve — the -hier-group flag reaches the aggregator.
func TestHierarchicalTrainingSmoke(t *testing.T) {
	res := clitest.Run(t, "-model", "mlp", "-algo", "gtopk-hier", "-hier-group", "2",
		"-workers", "4", "-epochs", "1", "-iters", "2", "-batch", "2", "-density", "0.05")
	if res.Code != 0 {
		t.Fatalf("exit %d (stderr: %s)", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stdout, "algo=gtopk-hier") || !strings.Contains(res.Stdout, "epoch   1") {
		t.Fatalf("stdout missing training output:\n%s", res.Stdout)
	}
}
