// Command gtopk-train trains one of the reproduction's models with a
// selectable distributed S-SGD algorithm on a simulated worker cluster,
// printing the per-epoch training loss and the modelled communication
// time on the paper's 1 Gbps Ethernet.
//
// Example:
//
//	gtopk-train -model resnet20sim -algo gtopk -workers 4 -epochs 10 \
//	            -density 0.001 -warmup
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"gtopkssgd/internal/bench"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/sparse"
)

func main() {
	var (
		model     = flag.String("model", "resnet20sim", "model: vgg16sim|resnet20sim|alexnetsim|resnet50sim|lstm|mlp")
		algo      = flag.String("algo", "gtopk", "algorithm: dense|topk|gtopk|gtopk-hier|gtopk-naive|gtopk-ps|gtopk-layerwise|gtopk-bucketed|signsgd|terngrad|gtopk-quant8")
		workers   = flag.Int("workers", 4, "number of simulated workers (power of two for gtopk)")
		batch     = flag.Int("batch", 16, "mini-batch size per worker")
		epochs    = flag.Int("epochs", 8, "number of epochs")
		iters     = flag.Int("iters", 20, "iterations per epoch")
		density   = flag.Float64("density", 0.001, "gradient density rho")
		warmup    = flag.Bool("warmup", false, "use the paper's warmup density schedule")
		lr        = flag.Float64("lr", 0.05, "learning rate")
		momentum  = flag.Float64("momentum", 0.9, "momentum coefficient")
		clip      = flag.Float64("clip", 0, "per-element gradient clip (0 disables)")
		seed      = flag.Uint64("seed", 42, "random seed")
		evalN     = flag.Int("eval", 0, "held-out eval batches after training (0 disables)")
		hierGroup = flag.Int("hier-group", 0, "gtopk-hier group size G (0 picks the default of 4)")
		wire      = flag.String("wire", "", "sparse wire codec for the simulated fabric: v1, v2, v2-fp16, v3 or v3-<value> (empty keeps v1)")
		valueCdc  = flag.String("value-codec", "", "compound value codec (fp32|fp16|qsgd8|qsgd4|qsgd2|ternary|sign); requires -wire v3")
		quorum    = flag.Int("quorum", 0, "straggler-tolerant quorum size q: rounds close after q contributions under the -round-timeout deadline (0 disables; requires -algo gtopk or gtopk-hier and a strict majority; under gtopk-hier, q is the intra-group quorum q_g)")
		leaderQ   = flag.Int("leader-quorum", 0, "hierarchical quorum's leader-level quorum q_l over the group aggregates (0 = every group; requires -quorum and -algo gtopk-hier)")
		roundTO   = flag.Duration("round-timeout", 0, "per-round gather deadline for -quorum (must be > 0 when -quorum is set; under gtopk-hier the budget splits 1/4:1/2:1/4 across the intra, leader and broadcast levels)")
		kernels   = flag.String("kernels", sparse.DefaultKernels(), "sparse kernel implementation: fast (vectorized, where the build supports it) or pure; results are bit-identical")
	)
	flag.Parse()

	wireCodec, err := validate(*model, *algo, *workers, *batch, *epochs, *iters, *density, *lr, *evalN, *hierGroup, *wire, *valueCdc, *quorum, *leaderQ, *roundTO)
	if err == nil {
		if kerr := sparse.SetKernels(*kernels); kerr != nil {
			err = fmt.Errorf("-kernels: %w", kerr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gtopk-train: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}
	spec := bench.TrainSpec{
		Model:         *model,
		Algo:          *algo,
		Workers:       *workers,
		Batch:         *batch,
		Epochs:        *epochs,
		ItersPerEpoch: *iters,
		Density:       *density,
		LR:            float32(*lr),
		Momentum:      float32(*momentum),
		GradClip:      float32(*clip),
		Seed:          *seed,
		EvalBatches:   *evalN,
		HierGroup:     *hierGroup,
		Wire:          wireCodec,
		Quorum:        *quorum,
		LeaderQuorum:  *leaderQ,
		RoundTimeout:  *roundTO,
	}
	if *warmup {
		spec.WarmupDensities = bench.PaperWarmup()
	}
	if err := run(spec); err != nil {
		fmt.Fprintln(os.Stderr, "gtopk-train:", err)
		os.Exit(1)
	}
}

// validate rejects invocation errors up front (exit 2 with usage)
// instead of surfacing them as a late runtime failure, and resolves the
// -wire/-value-codec pair into the TrainSpec codec (0 = v1 default).
func validate(model, algo string, workers, batch, epochs, iters int, density, lr float64, evalN, hierGroup int, wire, valueCodec string, quorum, leaderQuorum int, roundTimeout time.Duration) (sparse.Codec, error) {
	if !slices.Contains(bench.Models(), model) {
		return 0, fmt.Errorf("unknown -model %q (want %s)", model, strings.Join(bench.Models(), ", "))
	}
	if !slices.Contains(bench.Algos(), algo) {
		return 0, fmt.Errorf("unknown -algo %q (want %s)", algo, strings.Join(bench.Algos(), ", "))
	}
	if workers < 1 {
		return 0, fmt.Errorf("-workers %d out of range: need >= 1", workers)
	}
	if batch < 1 {
		return 0, fmt.Errorf("-batch %d out of range: need >= 1", batch)
	}
	if epochs < 1 || iters < 1 {
		return 0, fmt.Errorf("-epochs/-iters must be >= 1 (got %d/%d)", epochs, iters)
	}
	if algo != "dense" && (density <= 0 || density > 1) {
		return 0, fmt.Errorf("-density %v out of range: need 0 < rho <= 1", density)
	}
	if lr <= 0 {
		return 0, fmt.Errorf("-lr %v out of range: need > 0", lr)
	}
	if evalN < 0 {
		return 0, fmt.Errorf("-eval %d out of range: need >= 0", evalN)
	}
	if hierGroup < 0 {
		return 0, fmt.Errorf("-hier-group %d out of range: need >= 0", hierGroup)
	}
	if hierGroup > 0 && algo != "gtopk-hier" {
		return 0, fmt.Errorf("-hier-group requires -algo gtopk-hier")
	}
	if quorum < 0 {
		return 0, fmt.Errorf("-quorum %d out of range: need >= 0", quorum)
	}
	if leaderQuorum < 0 {
		return 0, fmt.Errorf("-leader-quorum %d out of range: need >= 0", leaderQuorum)
	}
	if leaderQuorum > 0 && (quorum == 0 || algo != "gtopk-hier") {
		return 0, fmt.Errorf("-leader-quorum requires -quorum and -algo gtopk-hier (the leader level only exists in the hierarchical quorum collective)")
	}
	if quorum > 0 {
		switch algo {
		case "gtopk":
			if lo := core.QuorumMin(workers); quorum < lo || quorum > workers {
				return 0, fmt.Errorf("-quorum %d out of range [%d,%d] for -workers %d (a quorum must be a strict majority)",
					quorum, lo, workers, workers)
			}
		case "gtopk-hier":
			group := hierGroup
			if group == 0 {
				group = 4 // RunTraining's gtopk-hier default
			}
			if group > 1 && group < workers {
				if lo := core.QuorumMin(group); quorum < lo || quorum > group {
					return 0, fmt.Errorf("-quorum %d out of range [%d,%d] for groups of %d (the intra-group quorum must be a strict majority of one group)",
						quorum, lo, group, group)
				}
				if leaderQuorum > 0 {
					numGroups := (workers + group - 1) / group
					if lo := core.QuorumMin(numGroups); leaderQuorum < lo || leaderQuorum > numGroups {
						return 0, fmt.Errorf("-leader-quorum %d out of range [%d,%d] for %d groups", leaderQuorum, lo, numGroups, numGroups)
					}
				}
			} else {
				if leaderQuorum > 0 {
					return 0, fmt.Errorf("group size %d does not split -workers %d into groups (it degenerates to the flat tree), so -leader-quorum does not apply", group, workers)
				}
				if lo := core.QuorumMin(workers); quorum < lo || quorum > workers {
					return 0, fmt.Errorf("-quorum %d out of range [%d,%d] for -workers %d (a quorum must be a strict majority)",
						quorum, lo, workers, workers)
				}
			}
		default:
			return 0, fmt.Errorf("-quorum requires -algo gtopk or gtopk-hier (got %q): quorum rounds are a gTop-k collective mode", algo)
		}
		if roundTimeout <= 0 {
			return 0, fmt.Errorf("-quorum requires -round-timeout > 0 (got %v)", roundTimeout)
		}
	} else if roundTimeout != 0 {
		return 0, fmt.Errorf("-round-timeout requires -quorum (a deadline only bounds quorum rounds)")
	}
	var codec sparse.Codec
	if wire != "" {
		c, err := sparse.ParseCodec(wire)
		if err != nil {
			return 0, fmt.Errorf("-wire: %w", err)
		}
		codec = c
	}
	if valueCodec != "" {
		vc, err := sparse.ParseValueCodec(valueCodec)
		if err != nil {
			return 0, fmt.Errorf("-value-codec: %w", err)
		}
		if codec.WireVersion() != 3 {
			return 0, fmt.Errorf("-value-codec %s requires -wire v3 (got -wire %q)", vc, wire)
		}
		codec = sparse.CodecForWireValue(3, vc)
	}
	return codec, nil
}

func run(spec bench.TrainSpec) error {
	curve, err := bench.RunTraining(context.Background(), spec)
	if err != nil {
		return err
	}
	fmt.Printf("model=%s algo=%s workers=%d batch=%d density=%g\n\n",
		spec.Model, spec.Algo, spec.Workers, spec.Batch, spec.Density)
	for e, loss := range curve.EpochLoss {
		fmt.Printf("epoch %3d  loss %.4f\n", e+1, loss)
	}
	fmt.Printf("\nsimulated 1GbE communication time (rank 0): %v\n", curve.SimTime)
	if len(curve.EpochAcc) > 0 {
		fmt.Printf("held-out accuracy: %.3f\n", curve.EpochAcc[len(curve.EpochAcc)-1])
	}
	return nil
}
