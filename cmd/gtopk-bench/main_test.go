package main

import (
	"os"
	"sort"
	"strings"
	"testing"

	"gtopkssgd/internal/bench"
	"gtopkssgd/internal/clitest"
)

func TestMain(m *testing.M) {
	if clitest.InterceptMain() {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestFlagValidation: invocation errors exit 2 with usage.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		stderr string
	}{
		{"no-mode", nil, "one of -exp, -list or -all is required"},
		{"bad-wire", []string{"-exp", "hotpath", "-wire", "v0"}, "-wire"},
		{"bad-select-shards", []string{"-exp", "wire-codec", "-select-shards", "-1"}, "-select-shards -1 out of range"},
		{"bad-hier-group-negative", []string{"-exp", "hierarchy", "-hier-group", "-3"}, "-hier-group -3 out of range"},
		{"bad-hier-group-one", []string{"-exp", "hierarchy", "-hier-group", "1"}, "-hier-group 1 out of range"},
		{"bad-kernels", []string{"-exp", "hotpath", "-kernels", "bogus"}, `-kernels: sparse: unknown kernel mode "bogus"`},
		{"unknown-flag", []string{"-frobnicate"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := clitest.Run(t, tc.args...)
			if res.Code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", res.Code, res.Stderr)
			}
			if !strings.Contains(res.Stderr, tc.stderr) {
				t.Fatalf("stderr %q missing %q", res.Stderr, tc.stderr)
			}
		})
	}
}

// TestUnknownExperimentListsSorted: an unknown -exp must exit 2 and
// enumerate every registered experiment in sorted order — the listing
// must not depend on registration order.
func TestUnknownExperimentListsSorted(t *testing.T) {
	res := clitest.Run(t, "-exp", "definitely-not-an-experiment")
	if res.Code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stderr, `unknown experiment "definitely-not-an-experiment"`) {
		t.Fatalf("stderr %q lacks the unknown-experiment diagnostic", res.Stderr)
	}
	var listed []string
	for _, e := range bench.Experiments() {
		if !strings.Contains(res.Stderr, e.ID) {
			t.Fatalf("stderr does not list experiment %q", e.ID)
		}
		listed = append(listed, e.ID)
	}
	if !sort.StringsAreSorted(listed) {
		t.Fatalf("bench.Experiments() not sorted: %v", listed)
	}
	// The inline "(try: ...)" hint must also be sorted.
	tryIdx := strings.Index(res.Stderr, "(try: ")
	if tryIdx < 0 {
		t.Fatalf("stderr %q lacks the (try: ...) hint", res.Stderr)
	}
	hint := res.Stderr[tryIdx+len("(try: "):]
	hint = hint[:strings.Index(hint, ")")]
	ids := strings.Split(hint, ", ")
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("(try: ...) hint not sorted: %v", ids)
	}
	if len(ids) != len(bench.Experiments()) {
		t.Fatalf("hint lists %d experiments, registry has %d", len(ids), len(bench.Experiments()))
	}
}

// TestListEnumeratesExperiments: -list exits 0 and prints the catalogue,
// hierarchy experiment included.
func TestListEnumeratesExperiments(t *testing.T) {
	res := clitest.Run(t, "-list")
	if res.Code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", res.Code, res.Stderr)
	}
	for _, id := range []string{"hotpath", "wire-codec", "hierarchy", "fig9"} {
		if !strings.Contains(res.Stdout, id) {
			t.Fatalf("-list output missing %q:\n%s", id, res.Stdout)
		}
	}
}

// TestKernelsPureAccepted: -kernels pure is a valid mode on every build
// (the portable reference kernels are always compiled in).
func TestKernelsPureAccepted(t *testing.T) {
	res := clitest.Run(t, "-kernels", "pure", "-list")
	if res.Code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", res.Code, res.Stderr)
	}
}
