// Command gtopk-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	gtopk-bench -list                 # enumerate experiments
//	gtopk-bench -exp fig9             # regenerate one artifact
//	gtopk-bench -all                  # regenerate everything
//	gtopk-bench -exp fig5 -quick      # smoke-test profile
//
// Output is text tables: one row per x-axis point of the original plot.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gtopkssgd/internal/bench"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id to run (see -list)")
		list    = flag.Bool("list", false, "list available experiments")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "shrink training experiments to smoke-test size")
		seed    = flag.Uint64("seed", 42, "random seed for all experiments")
		jsonOut = flag.String("json", "", "hotpath experiment: output path for the machine-readable report (default BENCH_gtopk.json)")
		noDelay = flag.Bool("tcp-nodelay", true, "enable TCP_NODELAY on the harness's loopback sockets (false re-enables Nagle)")
	)
	flag.Parse()
	opt := bench.Options{Quick: *quick, Seed: *seed, JSONPath: *jsonOut, TCPNagle: !*noDelay}
	if err := run(*expID, *list, *all, opt); err != nil {
		fmt.Fprintln(os.Stderr, "gtopk-bench:", err)
		os.Exit(1)
	}
}

func run(expID string, list, all bool, opt bench.Options) error {
	switch {
	case list:
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Description)
		}
		return nil
	case all:
		for _, e := range bench.Experiments() {
			fmt.Printf("==== %s: %s ====\n\n", e.ID, e.Description)
			out, err := e.Run(context.Background(), opt)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Println(out)
		}
		return nil
	case expID != "":
		e, err := bench.Lookup(expID)
		if err != nil {
			return err
		}
		out, err := e.Run(context.Background(), opt)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	default:
		flag.Usage()
		return fmt.Errorf("one of -exp, -list or -all is required")
	}
}
