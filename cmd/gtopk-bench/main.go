// Command gtopk-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	gtopk-bench -list                 # enumerate experiments
//	gtopk-bench -exp fig9             # regenerate one artifact
//	gtopk-bench -all                  # regenerate everything
//	gtopk-bench -exp fig5 -quick      # smoke-test profile
//	gtopk-bench -exp wire-codec       # codec + sharded-selection bench
//
// Output is text tables: one row per x-axis point of the original plot.
// Unknown -exp names (and invalid flag values) print the valid choices
// and exit with status 2, mirroring gtopk-worker's strict validation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"gtopkssgd/internal/bench"
	"gtopkssgd/internal/sparse"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id to run (see -list)")
		list    = flag.Bool("list", false, "list available experiments")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "shrink training experiments to smoke-test size")
		seed    = flag.Uint64("seed", 42, "random seed for all experiments")
		jsonOut = flag.String("json", "", "hotpath/wire-codec experiments: output path for the machine-readable report (default BENCH_gtopk.json)")
		noDelay = flag.Bool("tcp-nodelay", true, "enable TCP_NODELAY on the harness's loopback sockets (false re-enables Nagle)")
		wire    = flag.String("wire", "v1", "sparse wire codec for the hotpath harness fabrics: v1, v2 or v2-fp16 (wire-codec sweeps all three regardless)")
		shards  = flag.Int("select-shards", 0, "wire-codec experiment: override the sharded-selection sweep with {1, N} (0 keeps the default {1,2,4})")
		hierG   = flag.Int("hier-group", 0, "hierarchy experiment: override the group-size sweep with {G} (0 keeps the default {4,8,16}; 1 is flat and therefore rejected)")
		kernels = flag.String("kernels", sparse.DefaultKernels(), "sparse kernel implementation: fast (vectorized, where the build supports it) or pure")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProf = flag.String("memprofile", "", "write a heap profile (post-run, after GC) to this file")
	)
	flag.Parse()

	codec, err := sparse.ParseCodec(*wire)
	if err != nil {
		usageError(fmt.Errorf("-wire: %w", err))
	}
	if err := sparse.SetKernels(*kernels); err != nil {
		usageError(fmt.Errorf("-kernels: %w", err))
	}
	if *shards < 0 {
		usageError(fmt.Errorf("-select-shards %d out of range: need >= 0", *shards))
	}
	if *hierG < 0 || *hierG == 1 {
		usageError(fmt.Errorf("-hier-group %d out of range: need 0 (default sweep) or >= 2", *hierG))
	}
	opt := bench.Options{
		Quick: *quick, Seed: *seed, JSONPath: *jsonOut, TCPNagle: !*noDelay,
		Wire: codec, SelectShards: *shards, HierGroup: *hierG,
	}
	if !*list && !*all && *expID == "" {
		usageError(fmt.Errorf("one of -exp, -list or -all is required"))
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gtopk-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gtopk-bench:", err)
			os.Exit(1)
		}
		defer f.Close()            //nolint:errcheck // profile already flushed
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gtopk-bench:", err)
				return
			}
			defer f.Close() //nolint:errcheck // nothing else to do on close failure
			runtime.GC()    // materialize the post-run live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gtopk-bench:", err)
			}
		}()
	}
	if err := run(*expID, *list, *all, opt); err != nil {
		fmt.Fprintln(os.Stderr, "gtopk-bench:", err)
		os.Exit(1)
	}
}

// usageError reports a bad flag value with the usage text and exits 2
// (the conventional "bad invocation" status flag.ExitOnError also uses).
func usageError(err error) {
	fmt.Fprintf(os.Stderr, "gtopk-bench: %v\n\n", err)
	flag.Usage()
	os.Exit(2)
}

func run(expID string, list, all bool, opt bench.Options) error {
	switch {
	case list:
		printExperiments(os.Stdout)
		return nil
	case all:
		for _, e := range bench.Experiments() {
			fmt.Printf("==== %s: %s ====\n\n", e.ID, e.Description)
			out, err := e.Run(context.Background(), opt)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Println(out)
		}
		return nil
	case expID != "":
		e, err := bench.Lookup(expID)
		if err != nil {
			// An unknown experiment is an invocation error, not a runtime
			// failure: list the valid names and exit 2 so scripts can tell
			// a typo from a broken benchmark.
			fmt.Fprintf(os.Stderr, "gtopk-bench: %v\n\nvalid experiments:\n", err)
			printExperiments(os.Stderr)
			os.Exit(2)
		}
		out, err := e.Run(context.Background(), opt)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	default:
		// Unreachable: main rejects the empty mode with usageError.
		return fmt.Errorf("one of -exp, -list or -all is required")
	}
}

// printExperiments writes the experiment catalogue, one per line.
func printExperiments(w *os.File) {
	for _, e := range bench.Experiments() {
		fmt.Fprintf(w, "%-22s %s\n", e.ID, e.Description)
	}
}
