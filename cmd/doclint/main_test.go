package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gtopkssgd/internal/clitest"
)

func TestMain(m *testing.M) {
	if clitest.InterceptMain() {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// writeGoFile drops one Go source file into a fresh temp dir and
// returns the dir.
func writeGoFile(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestExitCodes covers the three outcomes: clean package (0), missing
// doc comments (1), unreadable root (2).
func TestExitCodes(t *testing.T) {
	clean := writeGoFile(t, "// Package ok is documented.\npackage ok\n\n// Exported is documented.\nfunc Exported() {}\n")
	res := clitest.Run(t, clean)
	if res.Code != 0 {
		t.Fatalf("clean package: exit %d (stdout: %s stderr: %s)", res.Code, res.Stdout, res.Stderr)
	}

	dirty := writeGoFile(t, "// Package bad is documented.\npackage bad\n\nfunc Undocumented() {}\n")
	res = clitest.Run(t, dirty)
	if res.Code != 1 {
		t.Fatalf("dirty package: exit %d, want 1 (stderr: %s)", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stdout, "Undocumented") || !strings.Contains(res.Stderr, "missing doc comment") {
		t.Fatalf("finding not reported: stdout %q stderr %q", res.Stdout, res.Stderr)
	}

	res = clitest.Run(t, filepath.Join(t.TempDir(), "does-not-exist", "..."))
	if res.Code != 2 {
		t.Fatalf("bad root: exit %d, want 2 (stderr: %s)", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stderr, "doclint:") {
		t.Fatalf("bad root: stderr %q lacks diagnostic", res.Stderr)
	}
}
