// Command doclint fails (exit 1) when any package under the given
// roots is missing a package doc comment, or any exported identifier in
// a library package is missing a doc comment. It is this repository's
// dependency-free stand-in for revive's exported-comment rule, wired
// into CI so the godoc story cannot regress:
//
//	go run ./cmd/doclint ./...
package main

import (
	"fmt"
	"os"

	"gtopkssgd/internal/doclint"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	findings, err := doclint.CheckDirs(roots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d missing doc comment(s)\n", len(findings))
		os.Exit(1)
	}
}
