// Command gtopk-allreduce reproduces Fig. 9 (TopKAllReduce vs
// gTopKAllReduce cost) and can additionally EXECUTE both collectives for
// real on an in-process cluster, verifying that the simulated-time
// accounting agrees with the Table I cost models and that both algorithms
// deliver identical results on every rank.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"

	"gtopkssgd/internal/bench"
	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

func main() {
	var (
		execute = flag.Bool("execute", false, "run the collectives for real on an in-process cluster")
		workers = flag.Int("workers", 8, "workers for -execute (power of two)")
		m       = flag.Int("m", 1_000_000, "model size for -execute")
		rho     = flag.Float64("rho", 0.001, "density for -execute")
		seed    = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()
	if err := validate(*workers, *m, *rho); err != nil {
		fmt.Fprintf(os.Stderr, "gtopk-allreduce: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Println(bench.Fig9(netsim.Paper1GbE()))
	if *execute {
		if err := executeReal(*workers, *m, *rho, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "gtopk-allreduce:", err)
			os.Exit(1)
		}
	}
}

// validate rejects invocation errors before any work starts. The
// executed TopKAllReduce baseline gathers over a recursive-doubling
// tree, so -workers must be a power of two >= 2.
func validate(workers, m int, rho float64) error {
	if workers < 2 || workers&(workers-1) != 0 {
		return fmt.Errorf("-workers %d out of range: need a power of two >= 2", workers)
	}
	if m < 1 {
		return fmt.Errorf("-m %d out of range: need >= 1", m)
	}
	if rho <= 0 || rho > 1 {
		return fmt.Errorf("-rho %v out of range: need 0 < rho <= 1", rho)
	}
	return nil
}

func executeReal(p, m int, rho float64, seed uint64) error {
	k := core.DensityToK(m, rho)
	fmt.Printf("\nReal execution: P=%d, m=%d, k=%d (simulated 1GbE clock)\n\n", p, m, k)
	fab, err := transport.NewInProc(p)
	if err != nil {
		return err
	}
	defer fab.Close()

	// Per-worker sparse gradients.
	vecs := make([]*sparse.Vector, p)
	for r := 0; r < p; r++ {
		src := prng.New(seed + uint64(r))
		g := make([]float32, m)
		for i := range g {
			g[i] = float32(src.NormFloat64())
		}
		vecs[r] = sparse.TopK(g, k)
	}

	model := netsim.Paper1GbE()
	for _, algo := range []string{"topk", "gtopk"} {
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			maxTime int64
			nnz     = make([]int, p)
			errs    = make([]error, p)
		)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				var clock netsim.Clock
				comm := collective.New(fab.Conn(rank)).WithClock(&clock, model)
				var (
					res *sparse.Vector
					err error
				)
				if algo == "topk" {
					res, err = core.TopKAllReduce(context.Background(), comm, vecs[rank].Clone())
				} else {
					res, err = core.GTopKAllReduce(context.Background(), comm, vecs[rank].Clone(), k)
				}
				if err != nil {
					errs[rank] = err
					return
				}
				nnz[rank] = res.NNZ()
				mu.Lock()
				if int64(clock.Now()) > maxTime {
					maxTime = int64(clock.Now())
				}
				mu.Unlock()
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		var predicted string
		if algo == "topk" {
			predicted = model.TopKAllReduce(p, k).String()
		} else {
			predicted = model.GTopKAllReduce(p, k).String()
		}
		fmt.Printf("%-6s  result nnz=%-8d  charged=%v  Table-I model=%v\n",
			algo, nnz[0], netsimDuration(maxTime), predicted)
	}
	return nil
}

func netsimDuration(ns int64) string {
	return fmt.Sprintf("%.3fms", float64(ns)/1e6)
}
