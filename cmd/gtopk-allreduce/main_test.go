package main

import (
	"os"
	"strings"
	"testing"

	"gtopkssgd/internal/clitest"
)

func TestMain(m *testing.M) {
	if clitest.InterceptMain() {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestFlagValidation: invocation errors exit 2 with usage before the
// Fig. 9 table prints.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		stderr string
	}{
		{"non-pow2-workers", []string{"-workers", "3"}, "-workers 3 out of range: need a power of two"},
		{"one-worker", []string{"-workers", "1"}, "-workers 1 out of range"},
		{"zero-m", []string{"-m", "0"}, "-m 0 out of range"},
		{"bad-rho", []string{"-rho", "0"}, "-rho 0 out of range"},
		{"rho-above-one", []string{"-rho", "1.1"}, "-rho 1.1 out of range"},
		{"unknown-flag", []string{"-nope"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := clitest.Run(t, tc.args...)
			if res.Code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", res.Code, res.Stderr)
			}
			if !strings.Contains(res.Stderr, tc.stderr) {
				t.Fatalf("stderr %q missing %q", res.Stderr, tc.stderr)
			}
			if strings.Contains(res.Stdout, "Fig 9") {
				t.Fatal("invalid invocation still printed the Fig. 9 table")
			}
		})
	}
}

// TestDefaultPrintsFig9: the analytic table costs nothing and must
// succeed with default flags.
func TestDefaultPrintsFig9(t *testing.T) {
	res := clitest.Run(t)
	if res.Code != 0 {
		t.Fatalf("exit %d (stderr: %s)", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stdout, "Fig 9") {
		t.Fatalf("stdout missing the Fig 9 table:\n%s", res.Stdout)
	}
}
