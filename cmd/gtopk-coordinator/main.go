// Command gtopk-coordinator runs the rendezvous and membership service
// of an elastic gTop-k S-SGD job. Start it first, then launch workers
// that join by name (no -rank/-addrs bookkeeping):
//
//	gtopk-coordinator -listen 127.0.0.1:7070 -world 4 &
//	for i in 0 1 2 3; do
//	    gtopk-worker -coordinator 127.0.0.1:7070 -name w$i \
//	                 -checkpoint-dir /tmp/gtopk &
//	done
//
// The coordinator assigns ranks (name-ordered, every epoch), pushes the
// data-plane address list to every worker, and watches heartbeats. When
// a worker dies — SIGKILL, OOM, network loss — it declares a new epoch:
// survivors rebuild the mesh at the smaller world size and resume from
// their checkpoints. The job is elastic in BOTH directions: a worker
// joining a running job is parked and admitted at the next epoch
// boundary, up to -max-world (0 means -world — replacements for dead
// workers are always welcome, growth beyond the launch size must be
// enabled explicitly). The process exits 0 when the job completes and
// non-zero when it aborts (membership fell below -min-world).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gtopkssgd/internal/cluster"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7070", "control-plane listen address")
		world      = flag.Int("world", 0, "worker count the job launches at (required)")
		minWorld   = flag.Int("min-world", 1, "abort when failures shrink membership below this")
		maxWorld   = flag.Int("max-world", 0, "admit parked late joiners up to this world size (0 = -world)")
		hbInterval = flag.Duration("hb-interval", cluster.DefaultHeartbeatInterval, "worker heartbeat period")
		hbTimeout  = flag.Duration("hb-timeout", cluster.DefaultHeartbeatTimeout, "silence declaring a worker dead")
		quiet      = flag.Bool("quiet", false, "suppress membership/epoch event log")
	)
	flag.Parse()
	if err := validate(*listen, *world, *minWorld, *maxWorld, *hbInterval, *hbTimeout); err != nil {
		// Invocation errors exit 2 with usage; runtime failures exit 1.
		fmt.Fprintf(os.Stderr, "gtopk-coordinator: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*listen, *world, *minWorld, *maxWorld, *hbInterval, *hbTimeout, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "gtopk-coordinator:", err)
		os.Exit(1)
	}
}

// validate rejects nonsensical flag values before any socket is opened.
func validate(listen string, world, minWorld, maxWorld int, hbInterval, hbTimeout time.Duration) error {
	if listen == "" {
		return fmt.Errorf("-listen must not be empty")
	}
	if world < 1 {
		return fmt.Errorf("-world is required and must be >= 1 (got %d)", world)
	}
	if minWorld < 1 || minWorld > world {
		return fmt.Errorf("-min-world %d out of range [1,%d]", minWorld, world)
	}
	if maxWorld < 0 || (maxWorld > 0 && maxWorld < world) {
		return fmt.Errorf("-max-world %d must be 0 (= -world) or >= -world %d", maxWorld, world)
	}
	if hbInterval <= 0 || hbTimeout <= 0 {
		return fmt.Errorf("-hb-interval/-hb-timeout must be > 0 (got %v/%v)", hbInterval, hbTimeout)
	}
	if hbTimeout <= hbInterval {
		return fmt.Errorf("-hb-timeout %v must exceed -hb-interval %v (a single late beat must not kill a worker)", hbTimeout, hbInterval)
	}
	return nil
}

func run(listen string, world, minWorld, maxWorld int, hbInterval, hbTimeout time.Duration, quiet bool) error {
	logf := log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds).Printf
	if quiet {
		logf = func(string, ...any) {}
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		World:             world,
		MinWorld:          minWorld,
		MaxWorld:          maxWorld,
		HeartbeatInterval: hbInterval,
		HeartbeatTimeout:  hbTimeout,
		Logf:              logf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	logf("gtopk-coordinator: waiting for %d workers on %s", world, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := coord.Serve(ctx, ln); err != nil {
		return err
	}
	logf("gtopk-coordinator: job completed")
	return nil
}
