package main

import (
	"os"
	"strings"
	"testing"

	"gtopkssgd/internal/clitest"
)

func TestMain(m *testing.M) {
	if clitest.InterceptMain() {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestFlagValidation: invocation errors exit 2 with usage before any
// socket is opened.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		stderr string
	}{
		{"missing-world", nil, "-world is required"},
		{"zero-world", []string{"-world", "0"}, "-world is required and must be >= 1"},
		{"min-world-above-world", []string{"-world", "2", "-min-world", "3"}, "-min-world 3 out of range"},
		{"zero-min-world", []string{"-world", "2", "-min-world", "0"}, "-min-world 0 out of range"},
		{"negative-max-world", []string{"-world", "2", "-max-world", "-1"}, "-max-world -1 must be 0"},
		{"max-world-below-world", []string{"-world", "4", "-max-world", "3"}, "-max-world 3 must be 0 (= -world) or >= -world 4"},
		{"empty-listen", []string{"-world", "2", "-listen", ""}, "-listen must not be empty"},
		{"bad-hb-interval", []string{"-world", "2", "-hb-interval", "-1s"}, "must be > 0"},
		{"hb-timeout-below-interval", []string{"-world", "2", "-hb-interval", "2s", "-hb-timeout", "1s"}, "must exceed -hb-interval"},
		{"unknown-flag", []string{"-bogus"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := clitest.Run(t, tc.args...)
			if res.Code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", res.Code, res.Stderr)
			}
			if !strings.Contains(res.Stderr, tc.stderr) {
				t.Fatalf("stderr %q missing %q", res.Stderr, tc.stderr)
			}
		})
	}
}
